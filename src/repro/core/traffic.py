"""Network-traffic analysis (paper §4: Tables 1–4, Figure 2).

Consumes only auditor-observable artifacts: per-skill encrypted captures
(router vantage), DNS answers seen on the wire, the entity database,
WHOIS, and filter lists.  Ground truth from :mod:`repro.data` is never
read here.
"""

from __future__ import annotations

import functools
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.experiment import AuditDataset, PersonaArtifacts
from repro.core.parallel import parallel_map
from repro.netsim.pcap import CaptureSession
from repro.obs.collector import NULL_OBS
from repro.orgmap.filterlists import FilterList
from repro.orgmap.resolver import OrgResolver

__all__ = [
    "SkillTraffic",
    "TrafficAnalysis",
    "OrgClass",
    "analyze_traffic",
    "analyze_traffic_stream",
]

AMAZON = "Amazon Technologies, Inc."

#: Domains owned by a skill's own vendor (first party).  The auditor
#: derives this from the store listing's vendor name vs the domain's
#: resolved organization.
OrgClass = str  # "amazon" | "skill vendor" | "third party"


@dataclass
class SkillTraffic:
    """Per-skill view of contacted domains."""

    skill_id: str
    persona: str
    #: domain -> (organization, request count)
    domains: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    def organizations(self) -> Set[str]:
        return {org for org, _ in self.domains.values()}


@dataclass
class TrafficAnalysis:
    """All §4 aggregates, ready for table rendering."""

    per_skill: List[SkillTraffic]
    #: domain -> set of skill ids contacting it (Table 1 counts).
    skills_by_domain: Dict[str, Set[str]]
    #: domain -> organization.
    domain_org: Dict[str, str]
    #: domain -> "amazon" | "skill vendor" | "third party".
    domain_class: Dict[str, OrgClass]
    #: domain -> True when the filter list flags it (Table 2 shading).
    domain_is_ad_tracking: Dict[str, bool]
    #: request counts per (org class, ad/tracking flag) for Table 2.
    traffic_matrix: Dict[Tuple[OrgClass, bool], int]
    #: persona -> (ad/tracking third-party domains, functional ones) — Table 3.
    persona_third_party: Dict[str, Tuple[Set[str], Set[str]]]
    #: skill id -> set of ad/tracking domains it contacts — Table 4.
    skill_ad_tracking: Dict[str, Set[str]]
    #: skill id -> org classes its traffic reaches ("amazon" / "skill
    #: vendor" / "third party"), classified with that skill's own vendor.
    skill_classes: Dict[str, Set[OrgClass]]
    failed_skills: List[str]

    # -- headline counts (§4.1) ----------------------------------------- #

    def skills_contacting(self, org_class: OrgClass) -> Set[str]:
        return {
            skill_id
            for skill_id, classes in self.skill_classes.items()
            if org_class in classes
        }

    def top_ad_tracking_skills(self, count: int = 5) -> List[Tuple[str, Set[str]]]:
        """Table 4: skills ranked by distinct A&T third-party domains."""
        ranked = sorted(
            (
                (skill_id, domains)
                for skill_id, domains in self.skill_ad_tracking.items()
                if domains
            ),
            key=lambda item: (-len(item[1]), item[0]),
        )
        return ranked[:count]

    def ad_tracking_traffic_share(self) -> Dict[Tuple[OrgClass, bool], float]:
        """Table 2: share of request volume per (org class, A&T flag)."""
        total = sum(self.traffic_matrix.values())
        if total == 0:
            return {}
        return {key: count / total for key, count in self.traffic_matrix.items()}


def analyze_traffic(
    dataset: AuditDataset,
    resolver: OrgResolver,
    filter_list: FilterList,
    vendor_by_skill: Mapping[str, str],
    *,
    workers: Optional[int] = None,
    backend: str = "thread",
) -> TrafficAnalysis:
    """Run the §4 pipeline over all per-skill captures.

    ``vendor_by_skill`` comes from store listings (skill id → vendor
    name), which the auditor scrapes from the marketplace — it is used
    only to tell first-party (vendor-owned) endpoints from third parties,
    exactly as the paper does.

    The expensive half — resolving every flow of every capture to a
    domain and organization — is independent per persona, so with
    ``workers > 1`` it fans out across :func:`repro.core.parallel.parallel_map`
    while the aggregation below stays serial and in roster order; the
    result is identical for any worker count.  Domain classification is
    a single memoized pass: each distinct ``(org, vendor)`` pair and each
    distinct domain is classified once, however many skills contact it.
    Repeat lookups avoided by the resolver/filter-list/classification
    caches are counted on ``dataset.obs`` as ``analysis.domain_cache_hits``
    (in-process hits only: the process backend's worker-side resolver
    copies do not report back).
    """
    obs = dataset.obs if dataset.obs is not None else NULL_OBS
    hits_start = resolver.cache_hits + filter_list.cache_hits

    artifacts_list = list(dataset.interest_personas)
    traffic_lists = parallel_map(
        functools.partial(_persona_traffic, resolver=resolver),
        artifacts_list,
        workers=workers,
        backend=backend,
    )

    per_skill: List[SkillTraffic] = []
    skills_by_domain: Dict[str, Set[str]] = defaultdict(set)
    domain_org: Dict[str, str] = {}
    traffic_matrix: Counter = Counter()
    persona_third_party: Dict[str, Tuple[Set[str], Set[str]]] = {}
    skill_ad_tracking: Dict[str, Set[str]] = defaultdict(set)
    skill_classes: Dict[str, Set[OrgClass]] = defaultdict(set)
    failed: List[str] = []

    # Single classification pass: every (org, vendor) pair and every
    # domain verdict is computed at most once for the whole dataset.
    class_memo: Dict[Tuple[str, str], OrgClass] = {}
    is_ad_memo: Dict[str, bool] = {}
    local_hits = 0

    def classify(org: str, vendor: str) -> OrgClass:
        nonlocal local_hits
        key = (org, vendor)
        org_class = class_memo.get(key)
        if org_class is None:
            class_memo[key] = org_class = _classify_org(org, vendor)
        else:
            local_hits += 1
        return org_class

    def blocked(domain: str) -> bool:
        nonlocal local_hits
        verdict = is_ad_memo.get(domain)
        if verdict is None:
            is_ad_memo[domain] = verdict = filter_list.is_blocked(domain)
        else:
            local_hits += 1
        return verdict

    for artifacts, traffic_list in zip(artifacts_list, traffic_lists):
        persona = artifacts.persona.name
        at_set, fn_set = persona_third_party.setdefault(persona, (set(), set()))
        failed.extend(artifacts.install_failures)
        for traffic in traffic_list:
            skill_id = traffic.skill_id
            per_skill.append(traffic)
            vendor = vendor_by_skill.get(skill_id, "")
            for domain, (org, requests) in traffic.domains.items():
                skills_by_domain[domain].add(skill_id)
                domain_org[domain] = org
                org_class = classify(org, vendor)
                skill_classes[skill_id].add(org_class)
                is_ad = blocked(domain)
                traffic_matrix[(org_class, is_ad)] += requests
                if org_class == "third party":
                    (at_set if is_ad else fn_set).add(domain)
                    if is_ad:
                        skill_ad_tracking[skill_id].add(domain)

    domain_class: Dict[str, OrgClass] = {}
    domain_is_ad: Dict[str, bool] = {}
    for domain, org in domain_org.items():
        vendors = {
            vendor_by_skill.get(s, "") for s in skills_by_domain[domain]
        }
        domain_class[domain] = classify(
            org, next(iter(vendors)) if len(vendors) == 1 else ""
        )
        domain_is_ad[domain] = blocked(domain)

    obs.inc(
        "analysis.domain_cache_hits",
        (resolver.cache_hits + filter_list.cache_hits - hits_start) + local_hits,
    )

    return TrafficAnalysis(
        per_skill=per_skill,
        skills_by_domain=dict(skills_by_domain),
        domain_org=domain_org,
        domain_class=domain_class,
        domain_is_ad_tracking=domain_is_ad,
        traffic_matrix=dict(traffic_matrix),
        persona_third_party=persona_third_party,
        skill_ad_tracking=dict(skill_ad_tracking),
        skill_classes=dict(skill_classes),
        failed_skills=sorted(set(failed)),
    )


def analyze_traffic_stream(
    flow_rows,
    resolver: OrgResolver,
    filter_list: FilterList,
    vendor_by_skill: Mapping[str, str],
    *,
    install_failures=(),
) -> TrafficAnalysis:
    """Run the §4 pipeline as a single-pass fold over flow records.

    ``flow_rows`` is any iterable of mappings with ``persona``,
    ``skill``, ``domain``, and ``packets`` fields in roster order — the
    segment store's ``flows`` stream, or rows re-read from an exported
    ``skill_flows.csv``.  Rows with an empty domain (no DNS answer, no
    SNI) are unattributable and skipped, exactly like the capture path.
    The result is identical to :func:`analyze_traffic` on the dataset
    the rows were extracted from: the stream already carries the
    DNS-or-SNI domain per flow, and domain→organization resolution is
    deterministic per domain.  ``install_failures`` supplies the failed
    skill ids (the stream's ``personas`` records), since flow rows only
    exist for captures that succeeded.

    Memory is bounded by the number of distinct (skill, domain) pairs —
    the analysis aggregates — never by the number of flows.
    """
    per_skill_by_key: Dict[Tuple[str, str], SkillTraffic] = {}
    skills_by_domain: Dict[str, Set[str]] = defaultdict(set)
    domain_org: Dict[str, str] = {}
    traffic_matrix: Counter = Counter()
    persona_third_party: Dict[str, Tuple[Set[str], Set[str]]] = {}
    skill_ad_tracking: Dict[str, Set[str]] = defaultdict(set)
    skill_classes: Dict[str, Set[OrgClass]] = defaultdict(set)

    class_memo: Dict[Tuple[str, str], OrgClass] = {}
    is_ad_memo: Dict[str, bool] = {}

    def classify(org: str, vendor: str) -> OrgClass:
        key = (org, vendor)
        org_class = class_memo.get(key)
        if org_class is None:
            class_memo[key] = org_class = _classify_org(org, vendor)
        return org_class

    def blocked(domain: str) -> bool:
        verdict = is_ad_memo.get(domain)
        if verdict is None:
            is_ad_memo[domain] = verdict = filter_list.is_blocked(domain)
        return verdict

    for row in flow_rows:
        persona = row["persona"]
        skill_id = row["skill"]
        at_set, fn_set = persona_third_party.setdefault(persona, (set(), set()))
        traffic = per_skill_by_key.get((persona, skill_id))
        if traffic is None:
            traffic = SkillTraffic(skill_id=skill_id, persona=persona)
            per_skill_by_key[(persona, skill_id)] = traffic
        domain = row["domain"]
        if not domain:
            continue
        attribution = resolver.attribute_domain(domain)
        org, count = traffic.domains.get(
            domain, (attribution.organization, 0)
        )
        requests = row["packets"]
        traffic.domains[domain] = (org, count + requests)

        vendor = vendor_by_skill.get(skill_id, "")
        skills_by_domain[domain].add(skill_id)
        domain_org[domain] = org
        org_class = classify(org, vendor)
        skill_classes[skill_id].add(org_class)
        is_ad = blocked(domain)
        traffic_matrix[(org_class, is_ad)] += requests
        if org_class == "third party":
            (at_set if is_ad else fn_set).add(domain)
            if is_ad:
                skill_ad_tracking[skill_id].add(domain)

    domain_class: Dict[str, OrgClass] = {}
    domain_is_ad: Dict[str, bool] = {}
    for domain, org in domain_org.items():
        vendors = {
            vendor_by_skill.get(s, "") for s in skills_by_domain[domain]
        }
        domain_class[domain] = classify(
            org, next(iter(vendors)) if len(vendors) == 1 else ""
        )
        domain_is_ad[domain] = blocked(domain)

    return TrafficAnalysis(
        per_skill=list(per_skill_by_key.values()),
        skills_by_domain=dict(skills_by_domain),
        domain_org=domain_org,
        domain_class=domain_class,
        domain_is_ad_tracking=domain_is_ad,
        traffic_matrix=dict(traffic_matrix),
        persona_third_party=persona_third_party,
        skill_ad_tracking=dict(skill_ad_tracking),
        skill_classes=dict(skill_classes),
        failed_skills=sorted(set(install_failures)),
    )


def _persona_traffic(
    artifacts: PersonaArtifacts, resolver: OrgResolver
) -> List[SkillTraffic]:
    """Resolve one persona's captures — the parallelizable unit of §4.

    Module-level (not a closure) so the process backend can pickle it
    via :func:`functools.partial`.
    """
    persona = artifacts.persona.name
    return [
        _skill_traffic(skill_id, persona, capture, resolver)
        for skill_id, capture in artifacts.skill_captures.items()
    ]


def _skill_traffic(
    skill_id: str,
    persona: str,
    capture: CaptureSession,
    resolver: OrgResolver,
) -> SkillTraffic:
    """Resolve one capture's flows to domains and organizations."""
    dns_table = capture.dns_table()
    traffic = SkillTraffic(skill_id=skill_id, persona=persona)
    for flow in capture.flows():
        if flow.key[3] == "dns":
            continue
        attribution = resolver.attribute_ip(flow.remote_ip, dns_table, sni=flow.sni)
        domain = attribution.domain
        if domain is None:
            continue
        org, count = traffic.domains.get(domain, (attribution.organization, 0))
        traffic.domains[domain] = (org, count + len(flow.packets))
    return traffic


def _classify_org(org: str, vendor: str) -> OrgClass:
    if org == AMAZON:
        return "amazon"
    if vendor and _vendor_matches(org, vendor):
        return "skill vendor"
    return "third party"


def _vendor_matches(org: str, vendor: str) -> bool:
    """Fuzzy vendor/organization match on significant name tokens."""
    stop = {"inc", "inc.", "llc", "ltd", "international", "the", "b.v.", "co"}
    org_tokens = {t.strip(",.").lower() for t in org.split()} - stop
    vendor_tokens = {t.strip(",.").lower() for t in vendor.split()} - stop
    return bool(org_tokens & vendor_tokens)
