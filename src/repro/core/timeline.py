"""Longitudinal multi-epoch audits with incremental persona recompute.

The paper's campaign is one snapshot: a six-week measurement window in
December 2021.  Real auditing is longitudinal — the same personas are
re-measured months apart while the ecosystem drifts underneath them:
interests shift, the skill catalog churns, filter lists are updated,
bidders enter and exit the exchange, and the seasonal bid surge comes
and goes.  This module adds that axis.

A :class:`TimelineSpec` is a base :class:`~repro.core.campaign.CampaignSpec`
plus an ordered sequence of :class:`EpochSpec` mutations.  Each epoch's
mutation state is **absolute** (cumulative), so epoch ``i`` is fully
described by ``spec.effective_config(i)`` — a plain
:class:`~repro.core.experiment.ExperimentConfig` with the epoch's
offset/churn/drift/bidder fields filled in.  Like the campaign spec, a
timeline spec is frozen, validated at construction, JSON-round-trippable,
and fingerprintable.

The execution core is **incremental recompute**.  Every persona's inputs
are summarized by :func:`persona_fingerprint` — the seed, the shared
config (including the epoch clock offset and bidder churn, which are
global), plus the persona's own slice of the selective mutations (its
summed interest-drift shift; its category's catalog-churn salts).  A
persona whose fingerprint is unchanged between consecutive epochs
produced byte-identical segments in the previous epoch's store, so its
records are *copied* instead of re-executed; only the dirty set runs
through the campaign engine (serial batches or the sharded supervisor,
via :func:`~repro.core.campaign.run_segment_positions`).  Because
per-persona artifacts depend only on ``(seed, config, persona)`` — the
same shard/batch invariance the parallel runner relies on — an
incremental epoch exports byte-identical files to a cold full re-run.

Filter-list updates are deliberately *not* config mutations: the filter
list classifies traffic after the fact, it never shapes it, so an update
dirties nobody.  It only changes how the **delta report**
(:func:`timeline_delta`) labels domains — which is exactly how a real
blocklist refresh behaves.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from datetime import timedelta
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.campaign import CampaignSpec, run_segment_positions
from repro.core.experiment import ExperimentConfig
from repro.core.personas import Persona, scaled_roster
from repro.data import categories as cat
from repro.data.calibration import holiday_factor, holiday_window
from repro.data.domains import PIHOLE_FILTER_TEXT
from repro.orgmap.filterlists import FilterList, FilterRule, parse_rules
from repro.util.clock import PAPER_EPOCH
from repro.util.rng import Seed

__all__ = [
    "TIMELINE_SCHEMA_VERSION",
    "EpochSpec",
    "TimelineSpec",
    "EpochRun",
    "TimelineResult",
    "persona_fingerprint",
    "dirty_positions",
    "run_timeline",
    "run_timeline_epoch",
    "timeline_delta",
]

#: Bump whenever the serialized TimelineSpec layout changes shape; a
#: stale or foreign timeline document fails :meth:`TimelineSpec.from_dict`.
TIMELINE_SCHEMA_VERSION = 1

#: Epoch fields that are injected into the effective config.  The base
#: campaign's config must leave all of them at their defaults — the
#: timeline owns the mutation axis.
_CONFIG_MUTATION_FIELDS = (
    "epoch_offset_days",
    "bidders_entered",
    "bidders_exited",
    "catalog_churn",
    "interest_drift",
)


# ---------------------------------------------------------------------- #
# EpochSpec
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class EpochSpec:
    """One epoch's **absolute** (cumulative) ecosystem state.

    Every field describes the world as of this epoch, not a diff against
    the previous one: a drift token added in epoch 1 must be repeated in
    epoch 2's tuple or the persona snaps back.  Absolute state keeps each
    epoch independently executable (``effective_config`` needs no fold
    over history) and makes the dirty-set comparison a pure two-epoch
    function.
    """

    #: Sim-clock shift in days: epoch day 0 is ``PAPER_EPOCH + offset``.
    #: Moves the campaign across the Table-6 holiday ramp, so seasonal
    #: bid levels differ between epochs.  Global — dirties every persona.
    offset_days: int = 0
    #: New exchange bidders (``edsp00``...) present this epoch.  Global.
    bidders_entered: int = 0
    #: Original partner bidders that have left.  Global.
    bidders_exited: int = 0
    #: ``"<category>:<salt>"`` review-count churn tokens — dirties only
    #: that category's interest personas.
    catalog_churn: Tuple[str, ...] = ()
    #: ``"<persona>:<shift>"`` interest-drift tokens — dirties only the
    #: named persona.
    interest_drift: Tuple[str, ...] = ()
    #: Hosts added to the epoch's filter list (blocked with subdomains).
    #: Never a config mutation: dirties nobody, reclassifies the delta.
    filterlist_add: Tuple[str, ...] = ()
    #: Base-list hosts whose rules are dropped this epoch.
    filterlist_remove: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("offset_days", "bidders_entered", "bidders_exited"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError(
                    f"{name} must be an int, got {type(value).__name__}"
                )
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        for name in (
            "catalog_churn",
            "interest_drift",
            "filterlist_add",
            "filterlist_remove",
        ):
            value = tuple(str(item) for item in getattr(self, name))
            object.__setattr__(self, name, value)
        for host in self.filterlist_add + self.filterlist_remove:
            if "." not in host or any(c.isspace() for c in host) or not host:
                raise ValueError(
                    f"filter-list entries must be bare hostnames, got {host!r}"
                )

    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        for name in (
            "catalog_churn",
            "interest_drift",
            "filterlist_add",
            "filterlist_remove",
        ):
            payload[name] = list(payload[name])
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EpochSpec":
        if not isinstance(payload, dict):
            raise TypeError(
                f"epoch spec must be a JSON object, got {type(payload).__name__}"
            )
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - field_names)
        if unknown:
            raise ValueError(f"unknown epoch spec fields: {unknown}")
        return cls(**payload)


# ---------------------------------------------------------------------- #
# TimelineSpec
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class TimelineSpec:
    """A base campaign re-run across an ordered sequence of epochs.

    Mirrors :class:`~repro.core.campaign.CampaignSpec`'s contract:
    frozen, validated at construction, exact JSON round trip
    (``TimelineSpec.from_json(spec.to_json())``), and a stable
    :meth:`fingerprint` usable as a job key.  The base spec must select
    the segment store — incremental reuse is a property of
    content-addressed persona coverage, which only the store provides.
    """

    base: CampaignSpec
    epochs: Tuple[EpochSpec, ...] = (EpochSpec(),)

    def __post_init__(self) -> None:
        if not isinstance(self.base, CampaignSpec):
            raise TypeError(
                f"base must be a CampaignSpec, got {type(self.base).__name__}"
            )
        epochs = tuple(self.epochs)
        if not epochs:
            raise ValueError("a timeline needs at least one epoch")
        for epoch in epochs:
            if not isinstance(epoch, EpochSpec):
                raise TypeError(
                    f"epochs must be EpochSpec instances, got "
                    f"{type(epoch).__name__}"
                )
        object.__setattr__(self, "epochs", epochs)
        if self.base.store != "segments":
            raise ValueError(
                "timeline base spec must use store='segments' — incremental "
                "epoch reuse needs the content-addressed segment store"
            )
        for name in _CONFIG_MUTATION_FIELDS:
            default = (0 if name.startswith(("epoch_", "bidders_")) else ())
            if getattr(self.base.config, name) != default:
                raise ValueError(
                    f"base config must leave {name} at its default; epoch "
                    "mutations belong in EpochSpec entries"
                )
        offsets = [epoch.offset_days for epoch in epochs]
        if offsets != sorted(offsets):
            raise ValueError(
                f"epoch offsets must be non-decreasing, got {offsets}"
            )
        # Force full ExperimentConfig validation of every epoch's tokens
        # now, so an invalid timeline can never be submitted or stored.
        for index in range(len(epochs)):
            self.effective_config(index)

    # ------------------------------------------------------------------ #
    # Derived per-epoch state
    # ------------------------------------------------------------------ #

    def effective_config(self, index: int) -> ExperimentConfig:
        """The epoch's complete :class:`ExperimentConfig` (validated)."""
        epoch = self.epochs[index]
        return dataclasses.replace(
            self.base.config,
            epoch_offset_days=epoch.offset_days,
            bidders_entered=epoch.bidders_entered,
            bidders_exited=epoch.bidders_exited,
            catalog_churn=epoch.catalog_churn,
            interest_drift=epoch.interest_drift,
        )

    def effective_filterlist(self, index: int) -> FilterList:
        """The epoch's compiled filter list (base ± epoch updates)."""
        epoch = self.epochs[index]
        removed = {host.lower() for host in epoch.filterlist_remove}
        rules = [
            rule
            for rule in parse_rules(PIHOLE_FILTER_TEXT.splitlines())
            if rule.host not in removed
        ]
        rules.extend(
            FilterRule(host=host.lower(), match_subdomains=True, is_exception=False)
            for host in epoch.filterlist_add
        )
        return FilterList(rules)

    def epoch_day0(self, index: int):
        """The epoch's simulated day-0 datetime (shifted paper epoch)."""
        return PAPER_EPOCH + timedelta(days=self.epochs[index].offset_days)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": TIMELINE_SCHEMA_VERSION,
            "base": self.base.to_dict(),
            "epochs": [epoch.to_dict() for epoch in self.epochs],
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TimelineSpec":
        if not isinstance(payload, dict):
            raise TypeError(
                f"timeline spec must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        payload = dict(payload)
        schema = payload.pop("schema", TIMELINE_SCHEMA_VERSION)
        if schema != TIMELINE_SCHEMA_VERSION:
            raise ValueError(
                f"timeline spec schema {schema!r} is not supported "
                f"(this build speaks schema {TIMELINE_SCHEMA_VERSION})"
            )
        unknown = sorted(set(payload) - {"base", "epochs"})
        if unknown:
            raise ValueError(f"unknown timeline spec fields: {unknown}")
        if "base" not in payload:
            raise ValueError("timeline spec is missing its base campaign")
        base = payload["base"]
        if isinstance(base, dict):
            base = CampaignSpec.from_dict(base)
        elif not isinstance(base, CampaignSpec):
            raise TypeError(
                "base must be a JSON object or CampaignSpec, got "
                f"{type(base).__name__}"
            )
        epochs_payload = payload.get("epochs", [{}])
        if not isinstance(epochs_payload, list):
            raise TypeError(
                f"epochs must be a JSON array, got "
                f"{type(epochs_payload).__name__}"
            )
        epochs = tuple(
            epoch
            if isinstance(epoch, EpochSpec)
            else EpochSpec.from_dict(epoch)
            for epoch in epochs_payload
        )
        return cls(base=base, epochs=epochs)

    @classmethod
    def from_json(cls, text: str) -> "TimelineSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"timeline spec is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def fingerprint(self) -> str:
        """Stable content digest of the timeline (16 hex chars)."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def replace(self, **changes: object) -> "TimelineSpec":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Seeded authoring
    # ------------------------------------------------------------------ #

    @classmethod
    def generate(
        cls,
        base: CampaignSpec,
        *,
        n_epochs: int = 2,
        epoch_gap_days: int = 0,
        drift_personas: int = 2,
        drift_max_shift: int = 3,
        churn_categories: int = 1,
        filterlist_updates: int = 1,
        bidders_entered_per_epoch: int = 0,
        bidders_exited_per_epoch: int = 0,
    ) -> "TimelineSpec":
        """Author a deterministic timeline from seeded mutation draws.

        Every draw comes from ``Seed(base.seed).derive("timeline")``
        substreams, so the same base spec and knobs always produce the
        same timeline.  Epoch 0 is the unmutated base; later epochs
        accumulate mutations.  The defaults keep the *global* mutation
        knobs at zero (no clock shift, no bidder churn), so by default
        only drifted personas and churned categories are dirtied and an
        incremental re-run re-executes a small fraction of the roster;
        raise ``epoch_gap_days`` to march epochs across the holiday ramp
        at the cost of dirtying everyone.
        """
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        if epoch_gap_days < 0:
            raise ValueError(
                f"epoch_gap_days must be >= 0, got {epoch_gap_days}"
            )
        if drift_max_shift < 1:
            raise ValueError(
                f"drift_max_shift must be >= 1, got {drift_max_shift}"
            )
        timeline_seed = Seed(base.seed).derive("timeline")
        interest_names = [
            p.name
            for p in scaled_roster(base.config.roster_scale)
            if p.kind == "interest"
        ]
        base_hosts = sorted(
            {
                rule.host
                for rule in parse_rules(PIHOLE_FILTER_TEXT.splitlines())
                if not rule.is_exception
            }
        )
        epochs: List[EpochSpec] = [EpochSpec()]
        drift: List[str] = []
        churn: List[str] = []
        added: List[str] = []
        removed: List[str] = []
        for index in range(1, n_epochs):
            rng = timeline_seed.rng("drift", index)
            for name in rng.sample(
                interest_names, min(drift_personas, len(interest_names))
            ):
                drift.append(f"{name}:{rng.randint(1, drift_max_shift)}")
            rng = timeline_seed.rng("churn", index)
            for category in rng.sample(
                sorted(cat.ALL_CATEGORIES),
                min(churn_categories, len(cat.ALL_CATEGORIES)),
            ):
                churn.append(f"{category}:e{index}-{rng.randrange(16**6):06x}")
            rng = timeline_seed.rng("filterlist", index)
            for update in range(filterlist_updates):
                removable = sorted(set(base_hosts) - set(removed))
                # Alternate additions (a newly-listed tracker) with
                # removals (a delisted host) so both delta directions
                # are exercised.
                if update % 2 == 0 or not removable:
                    added.append(
                        f"e{index}t{update}-{rng.randrange(16**4):04x}"
                        ".tracker.example"
                    )
                else:
                    removed.append(rng.choice(removable))
            epochs.append(
                EpochSpec(
                    offset_days=index * epoch_gap_days,
                    bidders_entered=index * bidders_entered_per_epoch,
                    bidders_exited=index * bidders_exited_per_epoch,
                    catalog_churn=tuple(churn),
                    interest_drift=tuple(drift),
                    filterlist_add=tuple(added),
                    filterlist_remove=tuple(removed),
                )
            )
        return cls(base=base, epochs=tuple(epochs))


# ---------------------------------------------------------------------- #
# Incremental recompute
# ---------------------------------------------------------------------- #


def persona_fingerprint(
    seed_root: int, config: ExperimentConfig, persona: Persona
) -> str:
    """Digest of every input that can reach one persona's artifacts.

    Two epochs in which a persona's fingerprint is unchanged produce
    byte-identical segment records for it, so the previous epoch's can
    be copied.  The digest covers:

    * the seed root and the *shared* config (every field except the two
      selective mutation tuples) — this includes the epoch clock offset
      and bidder entry/exit, which are global because bids sample the
      seasonal ramp and the whole bidder population;
    * the persona's summed interest-drift shift (what
      ``ExperimentRunner._skills_for`` actually consumes — token order
      and grouping don't matter);
    * its category's catalog-churn salts, in token order (the churn RNG
      is keyed by the accumulated salt sequence), for interest personas
      only — controls never consult review counts.
    """
    shared = dataclasses.asdict(config)
    drift_tokens = shared.pop("interest_drift")
    churn_tokens = shared.pop("catalog_churn")
    shift = sum(
        int(token.partition(":")[2])
        for token in drift_tokens
        if token.partition(":")[0] == persona.name
    )
    if persona.kind == "interest":
        salts = [
            token.partition(":")[2]
            for token in churn_tokens
            if token.partition(":")[0] == persona.category
        ]
    else:
        salts = []
    payload = json.dumps(
        {
            "seed_root": seed_root,
            "persona": persona.name,
            "config": shared,
            "interest_shift": shift,
            "catalog_salts": salts,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def dirty_positions(
    seed_root: int,
    prev_config: ExperimentConfig,
    config: ExperimentConfig,
    roster: Sequence[Persona],
) -> List[int]:
    """Roster positions whose persona fingerprint changed between epochs."""
    return [
        pos
        for pos, persona in enumerate(roster)
        if persona_fingerprint(seed_root, prev_config, persona)
        != persona_fingerprint(seed_root, config, persona)
    ]


def run_timeline_epoch(
    spec: TimelineSpec,
    index: int,
    *,
    store_dir: Union[str, Path],
    incremental: bool = True,
    worker_faults=None,
):
    """Execute one epoch into its segment store.

    With ``incremental=True`` and a predecessor epoch, clean personas
    (unchanged fingerprint, covered in the previous epoch's store) are
    reused; only the dirty set re-executes.  Reuse is **zero-copy**
    where possible: a previous-epoch batch whose positions are entirely
    clean is adopted whole via
    :meth:`~repro.core.segments.SegmentStore.adopt_batch` (hard links,
    no parse); only batches straddling the dirty set fall back to
    record-level copy.  With ``incremental=False`` (or for epoch 0)
    every uncovered persona runs cold — the correctness pin is that
    both paths export byte-identical files.  Returns ``(store,
    personas_reused, personas_recomputed)``; the store manifest's
    ``"timeline"`` key additionally records the reuse mechanics as
    ``reuse = {"linked", "copied", "records"}`` (segment files
    hard-linked, files byte-copied, records JSON-round-tripped).
    """
    from repro.core.cache import config_fingerprint
    from repro.core.segments import STREAMS, SegmentStore

    if not 0 <= index < len(spec.epochs):
        raise IndexError(f"epoch {index} outside timeline of {len(spec.epochs)}")
    config = spec.effective_config(index)
    seed = Seed(spec.base.seed)
    fingerprint = config_fingerprint(config)
    roster = scaled_roster(config.roster_scale)
    names = tuple(p.name for p in roster)
    store = SegmentStore(store_dir, seed.root, fingerprint, names)
    store.ensure_manifest()
    reuse = {"linked": 0, "copied": 0, "records": 0}

    if incremental and index > 0:
        prev_config = spec.effective_config(index - 1)
        prev_fingerprint = config_fingerprint(prev_config)
        if prev_fingerprint != fingerprint:
            # Identical fingerprints mean the two epochs share one store
            # directory and coverage carries over by construction; only
            # distinct stores need the explicit transfer.
            prev_store = SegmentStore(
                store_dir, seed.root, prev_fingerprint, names
            )
            dirty = set(dirty_positions(seed.root, prev_config, config, roster))
            already = store.covered_positions()
            for entry in prev_store.batches():
                batch_positions = set(entry.positions)
                wanted = batch_positions - dirty - already
                if not wanted:
                    continue
                if wanted == batch_positions:
                    counts = store.adopt_batch(prev_store, entry)
                    reuse["linked"] += counts["linked"]
                    reuse["copied"] += counts["copied"]
                else:
                    # The batch straddles the dirty set: only its clean
                    # positions transfer, record by record.
                    for pos in sorted(wanted):
                        records = {
                            stream: prev_store.stream_records_for(stream, pos)
                            for stream in STREAMS
                        }
                        reuse["records"] += sum(
                            len(recs) for recs in records.values()
                        )
                        store.write_batch(
                            [pos],
                            {
                                stream: recs
                                for stream, recs in records.items()
                                if recs
                            },
                        )
                already |= wanted

    covered = store.covered_positions()
    pending = [pos for pos in range(len(names)) if pos not in covered]
    reused = len(names) - len(pending)
    missing = run_segment_positions(
        store,
        seed,
        config,
        pending,
        parallel=spec.base.parallel,
        workers=spec.base.workers,
        backend=spec.base.backend,
        batch_personas=spec.base.batch_personas,
        on_shard_failure=spec.base.on_shard_failure,
        shard_timeout=spec.base.shard_timeout,
        max_shard_retries=spec.base.max_shard_retries,
        worker_faults=worker_faults,
    )
    store.write_manifest(
        "partial" if missing else "complete",
        extras={
            "timeline": {
                "epoch": index,
                "incremental": bool(incremental and index > 0),
                "personas_reused": reused,
                "personas_recomputed": len(pending),
                "reuse": reuse,
            }
        },
    )
    return store, reused, len(pending)


# ---------------------------------------------------------------------- #
# Delta report
# ---------------------------------------------------------------------- #


def _fold_tracker_domains(store, filter_list: FilterList) -> set:
    """One pass over the flows stream: distinct blocked domains."""
    domains = set()
    for record in store.iter_stream("flows"):
        domain = record["domain"]
        if domain:
            domains.add(domain)
    return {domain for domain in domains if filter_list.is_blocked(domain)}


def _fold_bid_means(store) -> Dict[str, Tuple[float, int]]:
    """One pass over the bids stream: per-persona (mean CPM, count)."""
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for record in store.iter_stream("bids"):
        persona = record["persona"]
        totals[persona] = totals.get(persona, 0.0) + record["cpm"]
        counts[persona] = counts.get(persona, 0) + 1
    return {
        persona: (totals[persona] / counts[persona], counts[persona])
        for persona in totals
    }


def _fold_policy_flags(store) -> Dict[Tuple[str, str], Dict[str, bool]]:
    """One pass over the policy stream: per-(persona, skill) compliance."""
    flags: Dict[Tuple[str, str], Dict[str, bool]] = {}
    for record in store.iter_stream("policy"):
        flags[(record["persona"], record["skill"])] = {
            field: bool(record[field])
            for field in ("has_link", "downloaded")
        }
    return flags


def _seasonality_cell(spec: TimelineSpec, index: int) -> Dict[str, object]:
    day0 = spec.epoch_day0(index)
    window_start, window_end = holiday_window()
    return {
        "day0": day0.date().isoformat(),
        "day0_factor": holiday_factor(day0),
        "day0_in_holiday_window": window_start <= day0.date() <= window_end,
    }


def timeline_delta(
    spec: TimelineSpec,
    prev_index: int,
    index: int,
    prev_store,
    store,
) -> Dict[str, object]:
    """What changed between two epochs, as single-pass stream folds.

    Mirrors :func:`~repro.core.export.summarize_segment_store`'s fold
    style: each section is one streaming pass per store, O(aggregates)
    in memory.  Sections:

    * ``tracker_domains`` — distinct flow domains classified by each
      epoch's *own* filter list; new/vanished is the symmetric
      difference, so both traffic changes and filter-list updates
      surface here.
    * ``bid_deltas`` — per-persona mean-CPM movement (seasonal shifts,
      bidder churn, drift).
    * ``policy_regressions`` — per-skill compliance flags that were true
      in the previous epoch and are false now (catalog churn swapping a
      compliant skill for a non-compliant one).
    """
    prev_filter = spec.effective_filterlist(prev_index)
    cur_filter = spec.effective_filterlist(index)
    prev_trackers = _fold_tracker_domains(prev_store, prev_filter)
    cur_trackers = _fold_tracker_domains(store, cur_filter)

    prev_bids = _fold_bid_means(prev_store)
    cur_bids = _fold_bid_means(store)
    bid_deltas: Dict[str, Dict[str, object]] = {}
    for persona in sorted(set(prev_bids) | set(cur_bids)):
        prev_mean, prev_n = prev_bids.get(persona, (0.0, 0))
        cur_mean, cur_n = cur_bids.get(persona, (0.0, 0))
        bid_deltas[persona] = {
            "mean_cpm_previous": prev_mean,
            "mean_cpm_current": cur_mean,
            "delta": cur_mean - prev_mean,
            "n_previous": prev_n,
            "n_current": cur_n,
        }

    prev_policy = _fold_policy_flags(prev_store)
    cur_policy = _fold_policy_flags(store)
    regressions: List[Dict[str, object]] = []
    for key in sorted(set(prev_policy) & set(cur_policy)):
        for field, was in prev_policy[key].items():
            if was and not cur_policy[key][field]:
                regressions.append(
                    {"persona": key[0], "skill": key[1], "field": field}
                )

    return {
        "schema": TIMELINE_SCHEMA_VERSION,
        "epochs": {"previous": prev_index, "current": index},
        "seasonality": {
            "previous": _seasonality_cell(spec, prev_index),
            "current": _seasonality_cell(spec, index),
        },
        "tracker_domains": {
            "previous_total": len(prev_trackers),
            "current_total": len(cur_trackers),
            "new": sorted(cur_trackers - prev_trackers),
            "vanished": sorted(prev_trackers - cur_trackers),
        },
        "bid_deltas": bid_deltas,
        "policy_regressions": regressions,
    }


# ---------------------------------------------------------------------- #
# Full-timeline driver
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class EpochRun:
    """One executed epoch's outcome."""

    index: int
    campaign_dir: str
    export_dir: str
    counts: Dict[str, int]
    personas_reused: int
    personas_recomputed: int
    status: str


@dataclass(frozen=True)
class TimelineResult:
    """Everything :func:`run_timeline` produced."""

    epochs: Tuple[EpochRun, ...]
    #: Consecutive-epoch delta reports (``len(epochs) - 1`` entries).
    deltas: Tuple[Dict[str, object], ...]


def run_timeline(
    spec: TimelineSpec,
    out_dir: Union[str, Path],
    *,
    incremental: bool = True,
    worker_faults=None,
) -> TimelineResult:
    """Execute every epoch in order, exporting each plus delta reports.

    The timeline counterpart of
    :func:`~repro.core.campaign.execute_spec`: epoch ``i`` exports to
    ``<out>/epoch-<i>/`` (the standard
    :data:`~repro.core.export.EXPORT_FILES` layout, byte-identical to a
    cold run of the same effective config), segment stores live under
    the base spec's ``store_dir`` or ``<out>/_segments``, and each
    consecutive pair's :func:`timeline_delta` lands at
    ``<out>/delta-epoch<i-1>-to-epoch<i>.json``.
    """
    from repro.core.export import export_segment_store

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    store_dir = (
        spec.base.store_dir
        if spec.base.store_dir is not None
        else str(out / "_segments")
    )
    runs: List[EpochRun] = []
    deltas: List[Dict[str, object]] = []
    prev_store = None
    for index in range(len(spec.epochs)):
        store, reused, recomputed = run_timeline_epoch(
            spec,
            index,
            store_dir=store_dir,
            incremental=incremental,
            worker_faults=worker_faults,
        )
        export_dir = out / f"epoch-{index:02d}"
        counts = export_segment_store(store, export_dir)
        runs.append(
            EpochRun(
                index=index,
                campaign_dir=str(store.campaign_dir),
                export_dir=str(export_dir),
                counts=counts,
                personas_reused=reused,
                personas_recomputed=recomputed,
                status=store.status() or "running",
            )
        )
        if prev_store is not None:
            delta = timeline_delta(spec, index - 1, index, prev_store, store)
            delta_path = (
                out / f"delta-epoch{index - 1:02d}-to-epoch{index:02d}.json"
            )
            delta_path.write_text(
                json.dumps(delta, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            deltas.append(delta)
        prev_store = store
    return TimelineResult(epochs=tuple(runs), deltas=tuple(deltas))
