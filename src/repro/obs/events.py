"""Structured JSONL event log with a stable schema.

Every event is one JSON object with exactly five top-level keys — the
schema contract the unit tests pin down:

``schema``
    integer, :data:`EVENT_SCHEMA_VERSION`;
``seq``
    0-based emission index within this log;
``type``
    dotted event name (``"phase.end"``, ``"dsar.export"``, …);
``sim_time``
    simulated seconds since the campaign epoch when the event fired
    (``null`` when no world clock was bound);
``fields``
    free-form JSON-scalar payload.

Serialisation is canonical (sorted keys, compact separators), so a log
replayed from the same seed diffs clean line-by-line except for ``seq``
renumbering after merges.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Sequence, TextIO

__all__ = [
    "EventLog",
    "EVENT_SCHEMA_VERSION",
    "event_line",
    "make_event_record",
]

#: Bump when the event record layout changes shape.
EVENT_SCHEMA_VERSION = 1

_TOP_LEVEL_KEYS = ("schema", "seq", "type", "sim_time", "fields")


def make_event_record(
    seq: int,
    event_type: str,
    fields: Dict[str, object],
    sim_time: Optional[float] = None,
) -> Dict[str, object]:
    """One schema-conformant event record (the five-key contract).

    Shared by the in-memory :class:`EventLog` and the service layer's
    on-disk job logs (:mod:`repro.service.jobs`), so every JSONL event
    in the system — campaign trace or job progress — has the same shape
    and the same validation.
    """
    for key, value in fields.items():
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise TypeError(
                f"event field {key!r} must be a JSON scalar, got "
                f"{type(value).__name__}"
            )
    return {
        "schema": EVENT_SCHEMA_VERSION,
        "seq": seq,
        "type": event_type,
        "sim_time": None if sim_time is None else round(sim_time, 6),
        "fields": {key: fields[key] for key in sorted(fields)},
    }


def event_line(record: Dict[str, object]) -> str:
    """The canonical JSONL form (sorted keys, compact separators)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class EventLog:
    """Append-only structured event sink."""

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self._records: List[Dict[str, object]] = []

    def bind_clock(self, clock) -> None:
        self._clock = clock

    # ------------------------------------------------------------------ #

    def emit(self, event_type: str, **fields: object) -> Dict[str, object]:
        """Record one event, stamping the current simulated time."""
        record = make_event_record(
            len(self._records),
            event_type,
            fields,
            sim_time=None if self._clock is None else self._clock.now,
        )
        self._records.append(record)
        return record

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self._records)

    def records(self) -> List[Dict[str, object]]:
        return list(self._records)

    def of_type(self, event_type: str) -> List[Dict[str, object]]:
        return [r for r in self._records if r["type"] == event_type]

    def to_jsonl(self) -> str:
        """One canonical JSON object per line."""
        return "\n".join(event_line(record) for record in self._records)

    def write(self, handle: TextIO) -> int:
        """Write the JSONL form to ``handle``; returns the line count."""
        text = self.to_jsonl()
        if text:
            handle.write(text + "\n")
        return len(self._records)

    # ------------------------------------------------------------------ #

    @staticmethod
    def merge(logs: Sequence["EventLog"]) -> "EventLog":
        """Concatenate shard logs (callers pass them sorted by shard
        index) and renumber ``seq`` so the merged log is itself valid."""
        merged = EventLog()
        for log in logs:
            for record in log._records:
                copied = dict(record)
                copied["seq"] = len(merged._records)
                merged._records.append(copied)
        return merged
