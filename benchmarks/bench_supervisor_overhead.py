"""Supervisor + checkpointing overhead on a healthy parallel run.

The crash-safe execution layer (shard journal, watchdog poll loop,
retry bookkeeping — ``repro.core.checkpoint`` / the supervisor in
``repro.core.parallel``) must be close to free when nothing goes wrong:
its budget is <5% wall-clock over the bare-futures scatter it replaced.
The baseline here *is* that pre-supervisor loop, reconstructed inline:
submit every shard to an executor, gather results, merge — no journal,
no liveness polling, no watchdog.
"""

import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.parallel import _run_shard, merge_shard_results, shard_personas
from repro.core.personas import all_personas
from repro.util.rng import Seed

WORKERS = 4


def bench_supervisor_overhead(benchmark, bench_record, tmp_path):
    """Supervised + checkpointed run vs the bare futures loop it replaced.

    Both legs run the identical healthy 4-worker thread-backend campaign
    with observability off, so the measured delta is purely the
    supervisor machinery: journal pickling + fsync per shard, the poll
    loop, and manifest writes.  The stated budget is <5%; the asserted
    bound is looser (15%) to absorb shared-runner timing noise — the
    ``supervisor_overhead`` ratio in ``extra_info`` is the number to
    watch for drift.
    """
    config = ExperimentConfig(
        skills_per_persona=8,
        pre_iterations=2,
        post_iterations=6,
        crawl_sites=8,
        prebid_discovery_target=50,
        audio_hours=2.0,
    )
    seed = Seed(107)
    rounds = 3

    def bare_futures():
        """PR 4's parallel engine: scatter, gather, merge — no safety net."""
        shards = shard_personas(all_personas(), WORKERS)
        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            futures = [
                pool.submit(
                    _run_shard, i, seed, config, [p.name for p in shard], False
                )
                for i, shard in enumerate(shards)
            ]
            results = [future.result() for future in futures]
        return merge_shard_results(
            seed, results, fault_profile=config.fault_profile
        )

    def supervised():
        return run_campaign(
            config,
            seed,
            parallel=True,
            workers=WORKERS,
            backend="thread",
            checkpoint_dir=tmp_path / "journal",
            obs=False,
        )

    def best_of(fn):
        times = []
        for _ in range(rounds):
            started = time.perf_counter()
            fn()
            times.append(time.perf_counter() - started)
        return min(times)

    bare_futures()  # warm imports and caches
    baseline = best_of(bare_futures)
    supervised_dataset = benchmark.pedantic(supervised, rounds=1, iterations=1)
    checkpointed = best_of(supervised)

    overhead = checkpointed / baseline
    benchmark.extra_info["bare_futures_seconds"] = round(baseline, 3)
    benchmark.extra_info["supervised_seconds"] = round(checkpointed, 3)
    benchmark.extra_info["supervisor_overhead"] = round(overhead, 4)
    bench_record(
        "bench_supervisor_overhead",
        bare_futures_seconds=round(baseline, 3),
        supervised_seconds=round(checkpointed, 3),
        supervisor_overhead=round(overhead, 4),
    )

    # The supervised leg really checkpointed: the journal is complete.
    assert (tmp_path / "journal" / "journal.json").is_file()
    assert len(supervised_dataset.personas) == len(all_personas())
    assert supervised_dataset.missing_personas == ()
    assert overhead <= 1.15, (
        f"supervisor overhead {100 * (overhead - 1):.1f}% exceeds the "
        f"budget (supervised {checkpointed:.2f}s vs bare futures "
        f"{baseline:.2f}s)"
    )
