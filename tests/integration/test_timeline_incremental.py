"""Incremental timeline epochs must export byte-identically to cold runs.

The tentpole correctness pin: an epoch executed incrementally — clean
personas copied from the previous epoch's store, only the dirty set
re-run — produces export files bit-for-bit equal to recomputing the
whole roster from scratch, serially and sharded, healthy and under
fault injection.  The suite also pins the reuse accounting (a timeline
whose mutations touch a minority of personas re-executes only that
minority) and the delta report's shape.
"""

import hashlib
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import CampaignSpec
from repro.core.experiment import ExperimentConfig
from repro.core.export import EXPORT_FILES
from repro.core.personas import scaled_roster
from repro.core.timeline import (
    EpochSpec,
    TimelineSpec,
    dirty_positions,
    run_timeline,
)

SEED_ROOT = 7


def _config(fault_profile="none"):
    return ExperimentConfig(
        skills_per_persona=2,
        pre_iterations=1,
        post_iterations=1,
        crawl_sites=2,
        prebid_discovery_target=5,
        audio_hours=0.5,
        fault_profile=fault_profile,
    )


def _base(fault_profile="none", **overrides):
    return CampaignSpec(
        config=_config(fault_profile),
        seed=SEED_ROOT,
        store="segments",
        **overrides,
    )


def _spec(base):
    """Two epochs whose mutations dirty a strict minority of the roster."""
    return TimelineSpec(
        base=base,
        epochs=(
            EpochSpec(),
            EpochSpec(
                interest_drift=("dating:2", "smart-home:1"),
                catalog_churn=("pets-and-animals:e1-salt",),
                filterlist_add=("fresh.tracker.example",),
            ),
        ),
    )


def _epoch_digests(out_dir, index):
    epoch_dir = out_dir / f"epoch-{index:02d}"
    return {
        name: hashlib.sha256((epoch_dir / name).read_bytes()).hexdigest()
        for name in EXPORT_FILES
    }


@pytest.fixture(scope="module", params=["none", "mild"])
def cold_reference(request, tmp_path_factory):
    """Cold (full-recompute) serial exports per fault profile."""
    fault_profile = request.param
    out = tmp_path_factory.mktemp(f"cold-{fault_profile}")
    run_timeline(_spec(_base(fault_profile)), out, incremental=False)
    return fault_profile, (_epoch_digests(out, 0), _epoch_digests(out, 1))


class TestByteEquivalence:
    def test_incremental_serial_matches_cold(self, cold_reference, tmp_path):
        fault_profile, reference = cold_reference
        result = run_timeline(_spec(_base(fault_profile)), tmp_path)
        assert (_epoch_digests(tmp_path, 0), _epoch_digests(tmp_path, 1)) == reference
        # Epoch 1 really was incremental: the three mutated personas
        # (two drifted + one churned category) re-ran, the rest copied.
        assert result.epochs[1].personas_recomputed == 3
        assert result.epochs[1].personas_reused == len(scaled_roster(1)) - 3

    def test_incremental_parallel_matches_cold(self, cold_reference, tmp_path):
        fault_profile, reference = cold_reference
        spec = _spec(_base(fault_profile, parallel=True, workers=4, backend="thread"))
        result = run_timeline(spec, tmp_path)
        assert (_epoch_digests(tmp_path, 0), _epoch_digests(tmp_path, 1)) == reference
        assert result.epochs[1].personas_recomputed == 3


class TestReuseAccounting:
    def test_minority_dirty_set_reexecutes_only_dirty(self, tmp_path):
        spec = _spec(_base())
        roster = scaled_roster(1)
        dirty = dirty_positions(
            SEED_ROOT,
            spec.effective_config(0),
            spec.effective_config(1),
            roster,
        )
        assert 0 < len(dirty) < 0.3 * len(roster)
        result = run_timeline(spec, tmp_path)
        assert result.epochs[1].personas_recomputed == len(dirty)
        assert result.epochs[1].personas_reused == len(roster) - len(dirty)

    def test_manifest_publishes_reuse_counters(self, tmp_path):
        spec = _spec(_base())
        result = run_timeline(spec, tmp_path)
        manifest_path = Path(result.epochs[1].campaign_dir) / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        reuse = manifest["timeline"].pop("reuse")
        assert manifest["timeline"] == {
            "epoch": 1,
            "incremental": True,
            "personas_reused": result.epochs[1].personas_reused,
            "personas_recomputed": result.epochs[1].personas_recomputed,
        }
        # Every clean persona sits in its own single-position batch
        # (batch_personas=1), so reuse is pure file adoption: segment
        # files hard-linked, zero record-level JSON round trips.
        assert reuse["linked"] > 0
        assert reuse["copied"] == 0
        assert reuse["records"] == 0
        assert manifest["status"] == "complete"

    def test_straddling_batches_copy_only_clean_records(self, tmp_path):
        # batch_personas=4 makes epoch-0 batches span several personas,
        # so epoch 1's dirty set straddles some batches: those transfer
        # record-by-record while fully-clean batches still adopt whole.
        spec = _spec(_base(batch_personas=4))
        result = run_timeline(spec, tmp_path)
        manifest_path = Path(result.epochs[1].campaign_dir) / "MANIFEST.json"
        reuse = json.loads(manifest_path.read_text())["timeline"]["reuse"]
        assert reuse["linked"] > 0
        assert reuse["records"] > 0
        assert result.epochs[1].personas_recomputed == 3

    def test_identical_epochs_share_a_store_and_reuse_everything(self, tmp_path):
        spec = TimelineSpec(base=_base(), epochs=(EpochSpec(), EpochSpec()))
        result = run_timeline(spec, tmp_path)
        assert result.epochs[1].personas_recomputed == 0
        assert result.epochs[1].personas_reused == len(scaled_roster(1))
        assert result.epochs[0].campaign_dir == result.epochs[1].campaign_dir


class TestDeltaReport:
    @pytest.fixture(scope="class")
    def timeline_out(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("delta")
        result = run_timeline(_spec(_base()), out)
        return out, result

    def test_delta_written_and_round_trips(self, timeline_out):
        out, result = timeline_out
        path = out / "delta-epoch00-to-epoch01.json"
        assert json.loads(path.read_text()) == result.deltas[0]

    def test_delta_sections(self, timeline_out):
        _, result = timeline_out
        delta = result.deltas[0]
        assert delta["epochs"] == {"previous": 0, "current": 1}
        assert set(delta["tracker_domains"]) == {
            "previous_total",
            "current_total",
            "new",
            "vanished",
        }
        assert delta["seasonality"]["previous"]["day0_in_holiday_window"]
        # Every persona with bids appears in the bid deltas; the drifted
        # personas' means moved, so at least one delta is nonzero-keyed.
        assert "dating" in delta["bid_deltas"]
        assert {"mean_cpm_previous", "mean_cpm_current", "delta"} <= set(
            delta["bid_deltas"]["dating"]
        )

    def test_unmutated_epochs_produce_an_empty_delta(self, tmp_path):
        spec = TimelineSpec(base=_base(), epochs=(EpochSpec(), EpochSpec()))
        result = run_timeline(spec, tmp_path)
        delta = result.deltas[0]
        assert delta["tracker_domains"]["new"] == []
        assert delta["tracker_domains"]["vanished"] == []
        assert delta["policy_regressions"] == []
        assert all(
            cell["delta"] == 0.0 for cell in delta["bid_deltas"].values()
        )


class TestShardInvariance:
    """Epoch mutations are shard-invariant: the dirty set computes the
    same bytes no matter how it is split across workers."""

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=50))
    def test_serial_and_sharded_dirty_sets_agree(self, tmp_path_factory, seed):
        base_serial = CampaignSpec(config=_config(), seed=seed, store="segments")
        base_sharded = base_serial.replace(
            parallel=True, workers=4, backend="thread"
        )
        spec_serial = TimelineSpec.generate(base_serial, n_epochs=2)
        spec_sharded = TimelineSpec.generate(base_sharded, n_epochs=2)
        # Same seed -> same generated mutations; only execution differs.
        assert spec_serial.epochs == spec_sharded.epochs
        out_a = tmp_path_factory.mktemp(f"ser-{seed}")
        out_b = tmp_path_factory.mktemp(f"shard-{seed}")
        run_timeline(spec_serial, out_a)
        run_timeline(spec_sharded, out_b)
        for index in (0, 1):
            assert _epoch_digests(out_a, index) == _epoch_digests(out_b, index)
