"""Unit tests for the cold integrity audit (repro.core.fsck).

Every corruption class the storage fault injector can leave behind must
be detected, classified (ok / repaired / quarantined / unrecoverable),
and — under ``repair=True`` — fixed well enough that the online
machinery recovers: rebuilt indexes serve point reads, re-stamped
journals resume, truncated event logs append cleanly.
"""

import json
import pickle

import pytest

from repro.core.campaign import CampaignSpec
from repro.core.checkpoint import ShardJournal
from repro.core.experiment import ExperimentConfig
from repro.core.fsck import fsck_path
from repro.core.segments import SegmentStore
from repro.service.jobs import JobStore

ROSTER = ("alpha", "beta", "gamma", "delta")

TINY = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)


def make_store(root) -> SegmentStore:
    store = SegmentStore(root, 42, "fingerprint0001", ROSTER)
    store.ensure_manifest()
    return store


def bid_records(*positions):
    return {
        "bids": [
            {"pos": pos, "value": f"{pos}-{k}"}
            for pos in positions
            for k in range(2)
        ]
    }


def populated_store(root) -> SegmentStore:
    store = make_store(root)
    store.write_batch([0, 1], bid_records(0, 1))
    store.write_batch([2, 3], bid_records(2, 3))
    store.write_manifest("complete")
    return store


def make_journal(root) -> ShardJournal:
    journal = ShardJournal(root, 2026, "abc123", [["a", "b"], ["c"]])
    journal.write_shard(0, {"personas": ["a", "b"]})
    journal.write_shard(1, {"personas": ["c"]})
    journal.write_manifest(status="complete")
    return journal


class TestDetection:
    def test_rejects_unrecognized_directories(self, tmp_path):
        (tmp_path / "stuff.txt").write_text("hello")
        with pytest.raises(ValueError, match="not a segment store"):
            fsck_path(tmp_path)
        with pytest.raises(ValueError, match="not a directory"):
            fsck_path(tmp_path / "stuff.txt")

    def test_detects_each_tree_kind(self, tmp_path):
        store = populated_store(tmp_path / "store")
        make_journal(tmp_path / "journal")
        JobStore(tmp_path / "service").submit(CampaignSpec(config=TINY, seed=5))
        assert fsck_path(tmp_path / "store")["kind"] == "segment-store"
        assert fsck_path(store.campaign_dir)["kind"] == "segment-campaign"
        assert fsck_path(tmp_path / "journal")["kind"] == "checkpoint-journal"
        assert fsck_path(tmp_path / "service")["kind"] == "job-tree"


class TestSegmentCampaign:
    def test_clean_store_is_all_ok(self, tmp_path):
        populated_store(tmp_path)
        report = fsck_path(tmp_path)
        assert report["ok"] > 0
        assert report["repaired"] == 0
        assert report["quarantined"] == 0
        assert report["unrecoverable"] == 0
        assert report["actions"] == []

    def test_corrupt_manifest_is_unrecoverable(self, tmp_path):
        store = populated_store(tmp_path)
        store.manifest_path.write_text("{torn")
        report = fsck_path(tmp_path, repair=True)
        assert report["unrecoverable"] == 1
        assert store.manifest_path.exists()  # left in place for the operator

    def test_digest_mismatched_segment_quarantines_whole_batch(self, tmp_path):
        store = populated_store(tmp_path)
        segment = sorted(store.segments_dir.iterdir())[0]
        raw = bytearray(segment.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        segment.write_bytes(bytes(raw))

        dry = fsck_path(tmp_path)
        assert dry["quarantined"] == 2  # segment + its marker
        assert all(not action["applied"] for action in dry["actions"])
        assert segment.exists()  # dry run touched nothing

        report = fsck_path(tmp_path, repair=True)
        assert report["quarantined"] == 2
        assert not segment.exists()
        assert segment.with_suffix(segment.suffix + ".corrupt").exists()
        marker = store.batches_dir / "batch-00000000.json"
        assert not marker.exists()
        # The batch is now uncovered; a rerun recomputes it.
        store.invalidate_scan()
        assert store.covered_positions() == {2, 3}

    def test_corrupt_marker_quarantined(self, tmp_path):
        store = populated_store(tmp_path)
        marker = store.batches_dir / "batch-00000000.json"
        marker.write_text('{"schema": 999}')
        report = fsck_path(tmp_path, repair=True)
        assert report["quarantined"] == 1
        assert not marker.exists()

    def test_broken_index_is_rebuilt(self, tmp_path):
        store = populated_store(tmp_path)
        index = store.batches_dir / "index-00000000.json"
        original = json.loads(index.read_text())
        index.write_bytes(index.read_bytes()[:30])  # torn mid-file
        report = fsck_path(tmp_path, repair=True)
        assert report["repaired"] == 1
        rebuilt = json.loads(index.read_text())
        assert rebuilt == original
        # The rebuilt index serves point reads.
        fresh = SegmentStore(tmp_path, 42, "fingerprint0001", ROSTER)
        assert [r["value"] for r in fresh.stream_records_for("bids", 1)] == [
            "1-0",
            "1-1",
        ]

    def test_missing_index_is_rebuilt(self, tmp_path):
        store = populated_store(tmp_path)
        (store.batches_dir / "index-00000002.json").unlink()
        report = fsck_path(tmp_path, repair=True)
        assert report["repaired"] == 1
        assert (store.batches_dir / "index-00000002.json").exists()

    def test_garbage_digest_cache_is_dropped(self, tmp_path):
        store = populated_store(tmp_path)
        store.digest_cache_path.write_text("{not json")
        report = fsck_path(tmp_path, repair=True)
        assert report["repaired"] == 1
        assert not store.digest_cache_path.exists()

    def test_stale_digest_cache_entries_are_pruned(self, tmp_path):
        store = populated_store(tmp_path)
        # Warm the real cache, then poison one entry's digest.
        fresh = SegmentStore(tmp_path, 42, "fingerprint0001", ROSTER)
        list(fresh.iter_stream("bids"))
        fresh._flush_digest_cache()
        payload = json.loads(store.digest_cache_path.read_text())
        assert payload["files"]
        name = sorted(payload["files"])[0]
        payload["files"][name]["digest"] = "0" * 64
        payload["files"]["ghost.jsonl"] = {
            "size": 1, "mtime_ns": 1, "digest": "x"
        }
        store.digest_cache_path.write_text(json.dumps(payload))
        report = fsck_path(tmp_path, repair=True)
        assert report["repaired"] == 1
        pruned = json.loads(store.digest_cache_path.read_text())["files"]
        assert name not in pruned
        assert "ghost.jsonl" not in pruned
        # Clean pass after repair.
        after = fsck_path(tmp_path)
        assert after["repaired"] == after["quarantined"] == 0
        assert after["unrecoverable"] == 0


class TestCheckpointJournal:
    def test_clean_journal(self, tmp_path):
        make_journal(tmp_path)
        report = fsck_path(tmp_path)
        assert report["unrecoverable"] == 0
        assert report["ok"] == 3  # two shards + manifest

    def test_corrupt_shard_is_quarantined(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.shard_path(1).write_bytes(b"\x80not a pickle")
        report = fsck_path(tmp_path, repair=True)
        assert report["quarantined"] == 1
        assert not journal.shard_path(1).exists()

    def test_foreign_shard_is_quarantined(self, tmp_path):
        journal = make_journal(tmp_path)
        foreign = ShardJournal(
            tmp_path / "other", 999, "zzz999", [["x"], ["y"]]
        )
        foreign.write_shard(0, {"personas": ["x"]})
        journal.shard_path(0).write_bytes(
            foreign.shard_path(0).read_bytes()
        )
        report = fsck_path(tmp_path, repair=True)
        assert report["quarantined"] == 1

    def test_lost_manifest_is_restamped_and_resumable(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.manifest_path.write_text("{torn mid-write")

        dry = fsck_path(tmp_path)
        assert dry["repaired"] == 1
        assert not any(a["applied"] for a in dry["actions"])

        report = fsck_path(tmp_path, repair=True)
        assert report["repaired"] == 1
        manifest = json.loads(journal.manifest_path.read_text())
        assert manifest["restamped_by"] == "fsck"
        assert manifest["status"] == "partial"
        # The re-stamped key satisfies resume validation for the same
        # campaign — completed shards load instead of recomputing.
        again = ShardJournal(tmp_path, 2026, "abc123", [["a", "b"], ["c"]])
        again.validate_for_resume()
        assert again.load_shard(0) == {"personas": ["a", "b"]}

    def test_no_manifest_and_no_shards_is_unrecoverable(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.manifest_path.write_text("{torn")
        for index in (0, 1):
            journal.shard_path(index).write_bytes(b"rot")
        report = fsck_path(tmp_path, repair=True)
        assert report["unrecoverable"] == 1
        assert report["quarantined"] == 2


class TestJobTree:
    def _job(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(CampaignSpec(config=TINY, seed=5))
        job.events.emit("job.submitted")
        job.events.emit("job.started")
        return job

    def test_clean_job_tree(self, tmp_path):
        self._job(tmp_path)
        report = fsck_path(tmp_path)
        assert report["unrecoverable"] == 0
        assert report["quarantined"] == 0

    def test_corrupt_spec_is_unrecoverable(self, tmp_path):
        job = self._job(tmp_path)
        (job.root / "spec.json").write_text('{"config": "gone"')
        report = fsck_path(tmp_path, repair=True)
        assert report["unrecoverable"] == 1

    def test_corrupt_state_is_quarantined(self, tmp_path):
        job = self._job(tmp_path)
        (job.root / "state.json").write_text("{half")
        report = fsck_path(tmp_path, repair=True)
        assert report["quarantined"] == 1
        assert not (job.root / "state.json").exists()
        assert (job.root / "state.json.corrupt").exists()

    def test_torn_event_tail_is_truncated(self, tmp_path):
        job = self._job(tmp_path)
        healthy = job.events_path.read_bytes()
        with job.events_path.open("ab") as handle:
            handle.write(b'{"schema": 1, "seq": 2, "ty')  # crash mid-append
        report = fsck_path(tmp_path, repair=True)
        assert report["repaired"] == 1
        assert job.events_path.read_bytes() == healthy

    def test_interior_event_damage_is_unrecoverable(self, tmp_path):
        job = self._job(tmp_path)
        lines = job.events_path.read_text().splitlines()
        lines[0] = "{rotted}"
        job.events_path.write_text("\n".join(lines) + "\n")
        report = fsck_path(tmp_path, repair=True)
        assert report["unrecoverable"] == 1

    def test_seq_gap_is_unrecoverable(self, tmp_path):
        job = self._job(tmp_path)
        lines = job.events_path.read_text().splitlines()
        record = json.loads(lines[1])
        record["seq"] = 7
        lines[1] = json.dumps(record)
        job.events_path.write_text("\n".join(lines) + "\n")
        report = fsck_path(tmp_path)
        assert report["unrecoverable"] == 1

    def test_single_job_dir_and_nested_trees(self, tmp_path):
        job = self._job(tmp_path)
        make_journal(job.root / "checkpoint")
        populated_store(job.root / "segments")
        report = fsck_path(job.root)
        assert report["kind"] == "job"
        assert report["unrecoverable"] == 0
        # Nested artifacts were walked too.
        artifacts = report["ok"]
        assert artifacts > 10
