"""Consistency tests over the domain/org catalog itself."""

from repro.data.domains import (
    ALL_DOMAINS,
    ORG_ENTITIES,
    build_endpoint_registry,
    build_entity_database,
    domains_by_org,
)
from repro.netsim.endpoints import registrable_domain


class TestDomainCatalogConsistency:
    def test_no_duplicate_domains(self):
        domains = [spec.domain for spec in ALL_DOMAINS]
        assert len(domains) == len(set(domains))

    def test_domains_by_org_partitions_catalog(self):
        grouped = domains_by_org()
        total = sum(len(domains) for domains in grouped.values())
        assert total == len(ALL_DOMAINS)

    def test_every_org_resolvable_by_entity_db(self):
        """Every ground-truth org must be recoverable by the auditor's
        entity database from at least one of its domains — otherwise a
        paper table would silently lose an organization."""
        db = build_entity_database()
        for org, domains in domains_by_org().items():
            resolved = {
                entity.name
                for domain in domains
                if (entity := db.entity_for_domain(domain)) is not None
            }
            assert org in resolved, org

    def test_registry_covers_all_domains(self):
        registry = build_endpoint_registry()
        for spec in ALL_DOMAINS:
            assert spec.domain in registry

    def test_entity_base_domains_unique(self):
        seen = {}
        for entity in ORG_ENTITIES:
            for domain in entity.domains:
                base = registrable_domain(domain)
                assert seen.setdefault(base, entity.name) == entity.name
