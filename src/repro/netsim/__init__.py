"""Network simulation substrate.

Models the slice of the Internet an auditor can observe from a home
router: packets with TLS-opaque payloads, cleartext DNS, HTTP messages,
and tcpdump-style capture sessions.
"""

from repro.netsim.dns import DnsRecord, DnsServer, DnsTable, build_dns_table
from repro.netsim.endpoints import Endpoint, EndpointRegistry, registrable_domain
from repro.netsim.faults import (
    DEFAULT_RETRY_POLICY,
    FAULT_PROFILES,
    FaultDecision,
    FaultPlan,
    FaultProfile,
    RetryPolicy,
)
from repro.netsim.http import HttpRequest, HttpResponse, estimate_size
from repro.netsim.packet import (
    Direction,
    Flow,
    FlowTable,
    Packet,
    Protocol,
    flow_key,
    group_flows,
)
from repro.netsim.pcap import CaptureSession
from repro.netsim.router import NetworkError, Router, ServiceHandler

__all__ = [
    "CaptureSession",
    "DEFAULT_RETRY_POLICY",
    "Direction",
    "DnsRecord",
    "DnsServer",
    "DnsTable",
    "Endpoint",
    "EndpointRegistry",
    "FAULT_PROFILES",
    "FaultDecision",
    "FaultPlan",
    "FaultProfile",
    "Flow",
    "FlowTable",
    "HttpRequest",
    "HttpResponse",
    "NetworkError",
    "Packet",
    "Protocol",
    "RetryPolicy",
    "Router",
    "ServiceHandler",
    "build_dns_table",
    "estimate_size",
    "flow_key",
    "group_flows",
    "registrable_domain",
]
