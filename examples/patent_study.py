#!/usr/bin/env python3
"""What the cough-drop patent enables — and what stops it.

Amazon's patent 10,096,319 ("Voice-based determination of physical and
emotional characteristics of users", cited by the paper as [69]) proposes
inferring traits like a cold or tiredness from the voice signal and
targeting ads accordingly.  This study runs the patented inference over
the voice uploads of simulated households and shows:

1. after a handful of interactions, the platform can infer each
   speaker's age band, mood, and health markers;
2. those traits map straight to targetable products (cough drops for
   coughers, the patent's own example);
3. the §8.1 local-voice defense forecloses the whole channel — text-only
   uploads carry nothing to infer from.
"""

from repro.alexa import AVSEcho, AlexaCloud, AmazonAccount, Marketplace
from repro.alexa.voice_traits import TraitInference, traits_exposed
from repro.core.report import render_table
from repro.data import categories as cat
from repro.data.domains import build_endpoint_registry
from repro.data.skill_catalog import build_catalog
from repro.defenses import LocalProcessingEcho
from repro.netsim.router import Router
from repro.util.clock import SimClock
from repro.util.rng import Seed


def main() -> None:
    seed = Seed(42)
    router = Router(build_endpoint_registry(), SimClock())
    catalog = build_catalog(seed)
    cloud = AlexaCloud(catalog, router, router.clock, seed)
    marketplace = Marketplace(catalog, cloud)
    skills = [s for s in catalog.top_skills(cat.HEALTH, 5) if s.active]

    inference = TraitInference()
    rows = []
    for i in range(8):  # eight simulated households
        account = AmazonAccount(
            email=f"household{i}@persona.example.com", persona=f"household-{i}"
        )
        device = AVSEcho(f"avs-house-{i}", account, router, cloud, seed)
        for spec in skills:
            marketplace.install(account, spec.skill_id)
            device.run_skill_session(spec)
        for record in device.plaintext_log:
            characteristics = record.payload["body"].get("voice_characteristics")
            if characteristics:
                inference.observe(account.customer_id, characteristics)
        traits = inference.inferred_traits(account.customer_id)
        products = inference.targetable_products(account.customer_id)
        rows.append(
            (
                f"household {i}",
                traits.get("age_band", "?"),
                traits.get("mood", "?"),
                traits.get("health_marker", "-"),
                ", ".join(products) or "—",
            )
        )
    print(
        render_table(
            ["speaker", "age band", "mood", "health", "targetable products"],
            rows,
            title="Patent [69] inference over stock-device voice uploads",
        )
    )

    # The defense: same workload, local voice processing.
    account = AmazonAccount(email="defended@persona.example.com", persona="defended")
    defended = LocalProcessingEcho("lv-patent", account, router, cloud, seed)
    for spec in skills:
        marketplace.install(account, spec.skill_id)
        defended.run_skill_session(spec)
    print(
        f"\nlocal-voice defense: trait-bearing uploads = "
        f"{sum(traits_exposed(defended.plaintext_log).values())} "
        f"(nothing for the patent to infer from)"
    )


if __name__ == "__main__":
    main()
