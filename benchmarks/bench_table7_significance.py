"""Table 7: Mann-Whitney U significance and rank-biserial effect size,
interest personas vs vanilla."""

from paper_targets import NON_SIGNIFICANT_PERSONAS, SIGNIFICANT_PERSONAS, TABLE7

from repro.core.bids import significance_vs_vanilla
from repro.core.report import render_table
from repro.core.stats import effect_size_label
from repro.data import categories as cat


def bench_table7_significance(benchmark, dataset):
    results = benchmark(significance_vs_vanilla, dataset)

    rows = []
    for persona in cat.ALL_CATEGORIES:
        result = results[persona]
        paper_p, paper_r = TABLE7[persona]
        rows.append(
            (
                persona,
                f"{result.p_value:.3f}",
                f"{paper_p:.3f}",
                f"{result.effect_size:.3f}",
                f"{paper_r:.3f}",
                effect_size_label(result.effect_size),
            )
        )
    print()
    print(
        render_table(
            ["persona", "p", "paper p", "effect", "paper effect", "band"],
            rows,
            title="Table 7",
        )
    )

    # The paper's headline pattern: six personas significantly above
    # vanilla, three (Smart Home, Wine & Beverages, Health & Fitness) not.
    for persona in SIGNIFICANT_PERSONAS:
        assert results[persona].significant, persona
    for persona in NON_SIGNIFICANT_PERSONAS:
        assert not results[persona].significant, persona
    # Effect sizes land in the paper's bands: medium for the significant
    # six, small-or-less for the other three.
    for persona in SIGNIFICANT_PERSONAS:
        assert results[persona].effect_size >= 0.28, persona
    for persona in NON_SIGNIFICANT_PERSONAS:
        assert results[persona].effect_size < 0.28, persona
