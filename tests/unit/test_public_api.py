"""The package's public surface: ``repro.__all__``, version wiring.

Two drift guards:

* every name in ``repro.__all__`` must import from ``repro`` and be
  documented in ``docs/API.md`` (regenerate with
  ``python docs/generate_api.py`` after changing a public surface);
* ``pyproject.toml`` must derive its package version from
  ``repro.__version__`` (the two once said 1.0.0 and 1.5.x at the same
  time — never again).
"""

import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestPublicSurface:
    def test_all_names_are_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name} "
            "but `from repro import ...` cannot provide it"

    def test_all_is_sorted_and_unique(self):
        assert list(repro.__all__) == sorted(set(repro.__all__))

    def test_core_entrypoints_are_public(self):
        for name in ("CampaignSpec", "ExperimentConfig", "Seed",
                     "execute_spec", "run_campaign"):
            assert name in repro.__all__

    def test_all_names_are_documented(self):
        api_md = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        missing = [
            name
            for name in repro.__all__
            if name != "__version__" and f"`{name}`" not in api_md
        ]
        assert not missing, (
            f"public names absent from docs/API.md: {missing} — run "
            "`PYTHONPATH=src python docs/generate_api.py`"
        )

    def test_service_surface_is_documented(self):
        api_md = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        for name in ("AuditService", "CampaignScheduler", "JobStore"):
            assert f"`{name}`" in api_md

    def test_star_import_matches_all(self):
        namespace = {}
        exec("from repro import *", namespace)  # noqa: S102 - test-only
        exported = {name for name in namespace if not name.startswith("__")}
        declared = {name for name in repro.__all__ if name != "__version__"}
        assert exported == declared


class TestVersionWiring:
    def test_version_is_semver(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)

    def test_pyproject_version_is_dynamic_from_package(self):
        tomllib = pytest.importorskip("tomllib")
        payload = tomllib.loads(
            (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        )
        assert "version" in payload["project"].get("dynamic", []), (
            "pyproject.toml must declare version as dynamic — a literal "
            "version there drifts from repro.__version__"
        )
        assert "version" not in payload["project"]
        attr = payload["tool"]["setuptools"]["dynamic"]["version"]["attr"]
        assert attr == "repro.__version__"
