"""Skill categories and persona naming shared across the package."""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "CONNECTED_CAR",
    "DATING",
    "FASHION",
    "PETS",
    "RELIGION",
    "SMART_HOME",
    "WINE",
    "HEALTH",
    "NAVIGATION",
    "ALL_CATEGORIES",
    "CATEGORY_DISPLAY",
    "WEB_HEALTH",
    "WEB_SCIENCE",
    "WEB_COMPUTERS",
    "WEB_CATEGORIES",
    "VANILLA",
    "base_category",
]

CONNECTED_CAR = "connected-car"
DATING = "dating"
FASHION = "fashion-and-style"
PETS = "pets-and-animals"
RELIGION = "religion-and-spirituality"
SMART_HOME = "smart-home"
WINE = "wine-and-beverages"
HEALTH = "health-and-fitness"
NAVIGATION = "navigation-and-trip-planners"

#: The nine skill categories of §3.1.1, in the paper's table order.
ALL_CATEGORIES: Tuple[str, ...] = (
    CONNECTED_CAR,
    DATING,
    FASHION,
    PETS,
    RELIGION,
    SMART_HOME,
    WINE,
    HEALTH,
    NAVIGATION,
)

CATEGORY_DISPLAY: Dict[str, str] = {
    CONNECTED_CAR: "Connected Car",
    DATING: "Dating",
    FASHION: "Fashion & Style",
    PETS: "Pets & Animals",
    RELIGION: "Religion & Spirituality",
    SMART_HOME: "Smart Home",
    WINE: "Wine & Beverages",
    HEALTH: "Health & Fitness",
    NAVIGATION: "Navigation & Trip Planners",
}

def base_category(persona: str) -> str:
    """Resolve a persona name to its targeting category.

    Scaled rosters (:func:`repro.core.personas.scaled_roster`) replicate
    interest personas as ``<category>-r<N>``; replicas carry the same
    interest profile as their base, so every category-keyed lookup
    (bid calibration, house-campaign schedules) resolves through here.
    For unreplicated names this is the identity.
    """
    base, sep, suffix = persona.rpartition("-r")
    if sep and suffix.isdigit():
        return base
    return persona


#: Control persona identifiers (§3.1.2).
VANILLA = "vanilla"
WEB_HEALTH = "web-health"
WEB_SCIENCE = "web-science"
WEB_COMPUTERS = "web-computers"
WEB_CATEGORIES: Tuple[str, ...] = (WEB_HEALTH, WEB_SCIENCE, WEB_COMPUTERS)
