"""Client-side header bidding: publisher pages and the prebid.js runtime.

The crawler interacts with pages the way the paper's injected script does
(§3.3): probe ``pbjs.version``, read ``pbjs.getBidResponses()``, and call
``pbjs.requestBids()`` when no bids arrived yet.  A
:class:`PrebidSession` is the in-page ``pbjs`` object for one page visit;
its bid requests and user-sync pixels go through the persona's
:class:`~repro.web.browser.Browser`, so everything lands in the request
log where the auditing framework can see it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional
from urllib.parse import urlencode

from repro.adtech.ads import AdCreative
from repro.adtech.exchange import AdTechWorld
from repro.data.websites import WebsiteSpec
from repro.netsim.http import HttpRequest, HttpResponse
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a runtime cycle with repro.web
    from repro.web.browser import Browser, WebUniverse

__all__ = ["BidResponse", "AdUnit", "PrebidSession", "register_publisher", "slot_id"]


@dataclass(frozen=True)
class BidResponse:
    """One bid as exposed by ``pbjs.getBidResponses()``."""

    slot_id: str
    bidder: str
    cpm: float
    currency: str = "USD"


@dataclass(frozen=True)
class AdUnit:
    """A header-bidding ad slot on a page."""

    slot_id: str
    sizes: tuple = ((300, 250),)


def slot_id(domain: str, position: int) -> str:
    return f"{domain}--slot-{position}"


def register_publisher(site: WebsiteSpec, universe: "WebUniverse") -> None:
    """Serve a publisher page that declares its prebid setup."""

    def handler(request: HttpRequest) -> HttpResponse:
        return HttpResponse(
            status=200,
            body={
                "page": site.domain,
                "prebid_version": site.prebid_version or None,
                "ad_units": [slot_id(site.domain, i) for i in range(site.ad_slots)],
            },
        )

    universe.register(site.domain, handler)


class PrebidSession:
    """The ``pbjs`` object for one page visit by one browser."""

    def __init__(
        self,
        site: WebsiteSpec,
        browser: "Browser",
        adtech: AdTechWorld,
        iteration: int,
    ) -> None:
        self.site = site
        self.browser = browser
        self.adtech = adtech
        self.iteration = iteration
        self._page_body: Optional[Dict] = None
        self._bids: Dict[str, List[BidResponse]] = {}
        self._requested = False

    # -- pbjs API ------------------------------------------------------- #

    def load_page(self) -> None:
        response = self.browser.get(f"https://{self.site.domain}/")
        self._page_body = dict(response.body) if response.ok else {}

    def version(self) -> Optional[str]:
        """``pbjs.version`` — None when the page has no prebid."""
        if self._page_body is None:
            self.load_page()
        return self._page_body.get("prebid_version")

    def get_bid_responses(self) -> Dict[str, List[BidResponse]]:
        """``pbjs.getBidResponses()`` — bids collected so far."""
        return {slot: list(bids) for slot, bids in self._bids.items()}

    def request_bids(self) -> Dict[str, List[BidResponse]]:
        """``pbjs.requestBids()`` — run the header-bidding auctions."""
        if self._page_body is None:
            self.load_page()
        if self._requested:
            return self.get_bid_responses()
        self._requested = True
        persona = self.browser.profile.persona
        when = self.browser.clock.datetime().isoformat()
        for unit in self._page_body.get("ad_units", []):
            if not self.adtech.slot_loads(unit, persona):
                continue
            responses: List[BidResponse] = []
            for bidder in self.adtech.bidders_for_slot(unit):
                query = urlencode(
                    {
                        "slot": unit,
                        "page": self.site.domain,
                        "iteration": self.iteration,
                        "when": when,
                    }
                )
                reply = self.browser.get(f"https://{bidder.domain}/bid?{query}")
                if not reply.ok:
                    continue
                responses.append(
                    BidResponse(
                        slot_id=unit,
                        bidder=reply.body["bidder"],
                        cpm=reply.body["cpm"],
                        currency=reply.body.get("currency", "USD"),
                    )
                )
                for sync_url in reply.body.get("user_syncs", []):
                    self.browser.get(sync_url)
            if responses:
                self._bids[unit] = responses
        return self.get_bid_responses()

    # -- rendering ------------------------------------------------------ #

    def render_winners(self, slot_index_offset: int, interacted: bool) -> List[AdCreative]:
        """Render the winning creative per slot, in slot order."""
        creatives: List[AdCreative] = []
        for offset, (unit, bids) in enumerate(sorted(self._bids.items())):
            if not bids:
                continue
            creatives.append(
                self.adtech.render_creative(
                    persona=self.browser.profile.persona,
                    iteration=self.iteration,
                    slot_id=unit,
                    slot_index=slot_index_offset + offset,
                    interacted=interacted,
                )
            )
        return creatives
