#!/usr/bin/env python3
"""The complete auditing campaign (paper §3), end to end.

Reproduces the paper's headline findings in one run:

* which organizations collect Echo interaction data (§4);
* how skill interaction changes advertisers' bids (§5.1–§5.2);
* which personas receive personalized ads (§5.3–§5.4);
* who syncs cookies with Amazon (§5.5);
* what interests Amazon infers from voice interactions (§6);
* how practice compares with privacy policies (§7).

Pass ``--small`` for a scaled-down run (~5 s); the default full campaign
takes ~30 s.
"""

import argparse

from repro.core import (
    analyze_compliance,
    analyze_profiling,
    analyze_traffic,
    bid_summary_table,
    detect_cookie_syncing,
    policy_availability,
    significance_vs_vanilla,
)
from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.report import render_kv, render_table
from repro.util.rng import Seed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--small", action="store_true", help="scaled-down run")
    args = parser.parse_args()

    config = (
        ExperimentConfig(
            skills_per_persona=8,
            pre_iterations=2,
            post_iterations=6,
            crawl_sites=8,
            prebid_discovery_target=50,
            audio_hours=2.0,
        )
        if args.small
        else ExperimentConfig()
    )

    print("running the measurement campaign ...")
    if args.small:
        print("(note: --small trades fidelity for speed — significance tests"
              " and interest inference need the full-scale campaign)")
    dataset = run_campaign(config, Seed(args.seed))
    world = dataset.world

    # ---- RQ1: who collects and propagates data? ------------------------ #
    vendor_by_skill = {s.skill_id: s.vendor for s in world.catalog}
    traffic = analyze_traffic(
        dataset, world.org_resolver(), world.filter_list, vendor_by_skill
    )
    shares = traffic.ad_tracking_traffic_share()
    ad_share = sum(v for (_, ad), v in shares.items() if ad)
    print()
    print(
        render_kv(
            {
                "skills contacting Amazon": len(traffic.skills_contacting("amazon")),
                "skills contacting own vendor": len(
                    traffic.skills_contacting("skill vendor")
                ),
                "skills contacting third parties": len(
                    traffic.skills_contacting("third party")
                ),
                "ad/tracking share of traffic": f"{100 * ad_share:.1f}%",
            },
            title="RQ1 — data collection (paper §4)",
        )
    )

    sync = detect_cookie_syncing(dataset)
    print()
    print(
        render_kv(
            {
                "advertisers syncing cookies with Amazon": sync.partner_count,
                "Amazon outbound syncs": len(sync.amazon_outbound_targets),
                "downstream third parties reached": sync.downstream_count,
            },
            title="RQ1 — cookie syncing (paper §5.5)",
        )
    )

    # ---- RQ2: is voice data used for targeting? ------------------------ #
    rows = []
    for row in bid_summary_table(dataset):
        rows.append((row.persona, f"{row.summary.median:.3f}", f"{row.summary.mean:.3f}"))
    print()
    print(render_table(["persona", "median CPM", "mean CPM"], rows,
                       title="RQ2 — bid levels (paper Table 5)"))

    results = significance_vs_vanilla(dataset)
    sig = sorted(p for p, r in results.items() if r.significant)
    print(f"\npersonas bidding significantly above vanilla: {sig}")

    profiling = analyze_profiling(dataset)
    with_interests = profiling.personas_with_interests("interaction-1")
    print(f"personas with Amazon-inferred ad interests: {with_interests}")
    print(f"personas with missing interest files: {profiling.personas_missing_file}")

    # ---- RQ3: do policies disclose any of this? ------------------------ #
    availability = policy_availability(dataset)
    compliance = analyze_compliance(
        dataset, world.corpus, world.org_resolver(), world.org_categories()
    )
    voice = compliance.datatype_table.get("voice recording", {})
    print()
    print(
        render_kv(
            {
                "skills with a policy link": f"{availability.with_link}/{availability.total_skills}",
                "policies that never mention Amazon/Alexa": availability.generic,
                "voice collection disclosed clearly": voice.get("clear", 0),
                "voice collection omitted or no policy": (
                    voice.get("omitted", 0) + voice.get("no policy", 0)
                ),
            },
            title="RQ3 — policy compliance (paper §7)",
        )
    )


if __name__ == "__main__":
    main()
