"""Unit tests for the service layer (repro.service): durable job state,
the event log, and the fair-share scheduler — exercised with stubbed
campaign execution so they run in milliseconds."""

import json
import threading
import time

import pytest

from repro.core.campaign import CampaignSpec
from repro.core.experiment import ExperimentConfig
from repro.obs import EVENT_SCHEMA_VERSION
from repro.service import (
    CampaignScheduler,
    Job,
    JobStore,
    SubmitError,
    worker_cost,
)
from repro.service.jobs import JobEventWriter, read_event_lines

TINY = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)

SPEC = CampaignSpec(config=TINY, seed=5)


class TestJobEventWriter:
    def test_records_speak_obs_event_schema(self, tmp_path):
        writer = JobEventWriter(tmp_path / "events.jsonl")
        writer.emit("job.submitted", seq=1)
        writer.emit("job.started", resumed=False)
        lines = read_event_lines(tmp_path / "events.jsonl")
        assert len(lines) == 2
        for index, line in enumerate(lines):
            record = json.loads(line)
            assert sorted(record) == [
                "fields", "schema", "seq", "sim_time", "type",
            ]
            assert record["schema"] == EVENT_SCHEMA_VERSION
            assert record["seq"] == index

    def test_seq_continues_across_writers(self, tmp_path):
        path = tmp_path / "events.jsonl"
        JobEventWriter(path).emit("a")
        JobEventWriter(path).emit("b")  # fresh writer = service restart
        records = [json.loads(l) for l in read_event_lines(path)]
        assert [r["seq"] for r in records] == [0, 1]

    def test_torn_trailing_fragment_is_ignored(self, tmp_path):
        path = tmp_path / "events.jsonl"
        JobEventWriter(path).emit("a")
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"half": ')  # crash mid-append
        assert len(read_event_lines(path)) == 1


class TestJobStore:
    def test_submit_persists_spec_and_state(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(SPEC)
        assert job.id.startswith("job-000001-")
        assert job.id.endswith(SPEC.fingerprint()[:8])
        assert job.state == "queued"
        reloaded = JobStore(tmp_path)  # fresh instance = restart
        again = reloaded.get(job.id)
        assert again is not None
        assert again.spec == SPEC
        assert again.state == "queued"

    def test_submit_rejects_managed_placement_fields(self, tmp_path):
        store = JobStore(tmp_path)
        managed = CampaignSpec(
            config=TINY, parallel=True, checkpoint_dir="/tmp/elsewhere"
        )
        with pytest.raises(SubmitError, match="managed by the service"):
            store.submit(managed)
        with pytest.raises(SubmitError, match="managed by the service"):
            store.submit(CampaignSpec(config=TINY, cache="/tmp/cache"))

    def test_job_ids_are_sequential_across_restarts(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.submit(SPEC)
        second = JobStore(tmp_path).submit(SPEC.replace(seed=6))
        assert first.id.split("-")[1] == "000001"
        assert second.id.split("-")[1] == "000002"

    def test_recover_requeues_running_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        queued = store.submit(SPEC)
        running = store.submit(SPEC.replace(seed=6))
        done = store.submit(SPEC.replace(seed=7))
        running.update_state("running")
        done.update_state("complete")
        recovered = JobStore(tmp_path).recover()
        assert [j.id for j in recovered] == [queued.id, running.id]
        crashed = JobStore(tmp_path).get(running.id)
        assert crashed.state == "queued"
        assert any(
            json.loads(l)["type"] == "job.recovered"
            for l in read_event_lines(crashed.events_path)
        )

    def test_effective_spec_isolates_namespaces(self, tmp_path):
        store = JobStore(tmp_path)
        parallel = store.submit(CampaignSpec(config=TINY, parallel=True, workers=2))
        effective = parallel.effective_spec()
        assert effective.checkpoint_dir == str(parallel.checkpoint_dir)
        assert effective.resume is False  # no journal yet
        (parallel.checkpoint_dir).mkdir(parents=True)
        (parallel.checkpoint_dir / "journal.json").write_text("{}")
        assert parallel.effective_spec().resume is True  # restart path

        segments = store.submit(CampaignSpec(config=TINY, store="segments"))
        assert segments.effective_spec().store_dir == str(segments.segments_dir)

    def test_describe_carries_spec_and_fingerprint(self, tmp_path):
        job = JobStore(tmp_path).submit(SPEC)
        payload = job.describe()
        assert payload["state"] == "queued"
        assert payload["fingerprint"] == SPEC.fingerprint()
        assert CampaignSpec.from_dict(payload["spec"]) == SPEC

    def test_recover_preserves_submission_order_keys(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.submit(SPEC.replace(seed=1), queued_at=100.0)
        second = store.submit(SPEC.replace(seed=2), queued_at=200.0)
        recovered = JobStore(tmp_path).recover()
        assert [j.id for j in recovered] == [first.id, second.id]
        states = [j.describe() for j in recovered]
        # Recovery must not re-stamp keys that survived the crash: a
        # fresh queued_at would let a later submission leapfrog an
        # earlier one on the restarted queue.
        assert [s["seq"] for s in states] == [1, 2]
        assert [s["queued_at"] for s in states] == [100.0, 200.0]

    def test_recover_restamps_job_whose_state_never_landed(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.submit(SPEC.replace(seed=1))
        second = store.submit(SPEC.replace(seed=2))
        # Crash window: spec.json persisted but the first state write
        # never landed.  The job must still recover, after first, with
        # seq reconstructed from its id.
        (second.root / "state.json").unlink()
        restarted = JobStore(tmp_path)
        recovered = restarted.recover()
        assert [j.id for j in recovered] == [first.id, second.id]
        stamped = restarted.get(second.id).describe()
        assert stamped["state"] == "queued"
        assert stamped["seq"] == 2
        assert "queued_at" in stamped


class _StubExecute:
    """Replace Job.execute: record concurrency, idle briefly, succeed."""

    def __init__(self, seconds=0.05):
        self.seconds = seconds
        self.lock = threading.Lock()
        self.active = 0
        self.peak_active = 0
        self.started = []

    def __call__(self, job):
        with self.lock:
            self.active += 1
            self.peak_active = max(self.peak_active, self.active)
            self.started.append(job.id)
        job.update_state("running")
        time.sleep(self.seconds)
        with self.lock:
            self.active -= 1
        job.events.emit("job.finished", state="complete")
        job.update_state("complete")
        return "complete"


class TestScheduler:
    def _scheduler(self, tmp_path, monkeypatch, *, total_workers, stub=None):
        stub = stub if stub is not None else _StubExecute()
        monkeypatch.setattr(Job, "execute", lambda job: stub(job))
        scheduler = CampaignScheduler(
            JobStore(tmp_path), total_workers=total_workers
        )
        return scheduler, stub

    def test_worker_cost(self):
        assert worker_cost(SPEC, 4) == 1
        assert worker_cost(CampaignSpec(config=TINY, parallel=True), 4) == 2
        parallel8 = CampaignSpec(config=TINY, parallel=True, workers=8)
        assert worker_cost(parallel8, 4) == 4  # clamped to the budget

    def test_jobs_complete_and_counters_count(self, tmp_path, monkeypatch):
        scheduler, stub = self._scheduler(tmp_path, monkeypatch, total_workers=2)
        scheduler.start()
        jobs = [scheduler.submit(SPEC.replace(seed=s)) for s in (1, 2, 3)]
        assert scheduler.wait_idle(timeout=10)
        scheduler.shutdown()
        assert all(job.state == "complete" for job in jobs)
        counters = scheduler.counters()
        assert counters["service.jobs_submitted"] == 3
        assert counters["service.jobs_completed"] == 3
        assert counters["service.workers_active"] == 0
        assert 1 <= counters["service.workers_peak"] <= 2

    def test_worker_budget_bounds_concurrency(self, tmp_path, monkeypatch):
        stub = _StubExecute(seconds=0.1)
        scheduler, stub = self._scheduler(
            tmp_path, monkeypatch, total_workers=2, stub=stub
        )
        scheduler.start()
        parallel = CampaignSpec(config=TINY, parallel=True, workers=2)
        for seed in range(1, 6):
            scheduler.submit(parallel.replace(seed=seed))
        assert scheduler.wait_idle(timeout=15)
        scheduler.shutdown()
        # each job costs 2 tokens of a 2-token budget: strictly serial
        assert stub.peak_active == 1
        assert scheduler.counters()["service.workers_peak"] == 2

    def test_admission_is_fifo(self, tmp_path, monkeypatch):
        stub = _StubExecute(seconds=0.05)
        scheduler, stub = self._scheduler(
            tmp_path, monkeypatch, total_workers=1, stub=stub
        )
        scheduler.start()
        submitted = [
            scheduler.submit(SPEC.replace(seed=s)).id for s in range(1, 6)
        ]
        assert scheduler.wait_idle(timeout=15)
        scheduler.shutdown()
        assert stub.started == submitted

    def test_cancel_queued_job(self, tmp_path, monkeypatch):
        stub = _StubExecute(seconds=0.2)
        scheduler, stub = self._scheduler(
            tmp_path, monkeypatch, total_workers=1, stub=stub
        )
        scheduler.start()
        blocker = scheduler.submit(SPEC.replace(seed=1))
        victim = scheduler.submit(SPEC.replace(seed=2))
        assert scheduler.cancel(victim.id) == "cancelled"
        assert scheduler.wait_idle(timeout=10)
        scheduler.shutdown()
        assert victim.state == "cancelled"
        assert blocker.state == "complete"
        assert scheduler.counters()["service.jobs_cancelled"] == 1
        assert scheduler.cancel("job-999999-nope") is None

    def test_start_recovers_persisted_jobs(self, tmp_path, monkeypatch):
        JobStore(tmp_path).submit(SPEC)  # persisted, never scheduled
        scheduler, stub = self._scheduler(tmp_path, monkeypatch, total_workers=1)
        scheduler.start()
        assert scheduler.wait_idle(timeout=10)
        scheduler.shutdown()
        assert scheduler.counters()["service.jobs_recovered"] == 1
        assert scheduler.counters()["service.jobs_completed"] == 1

    def test_worker_tokens_survive_base_exception(self, tmp_path, monkeypatch):
        # A BaseException escaping job.execute (KeyboardInterrupt landing
        # on a worker thread, SystemExit from deep in a backend) must
        # still release the job's worker tokens — otherwise admission is
        # wedged forever and every later job queues behind a ghost.
        calls = []

        def explode(job):
            calls.append(job.id)
            if len(calls) == 1:
                raise KeyboardInterrupt("delivered to the worker thread")
            job.update_state("complete")
            return "complete"

        monkeypatch.setattr(Job, "execute", explode)
        monkeypatch.setattr(threading, "excepthook", lambda args: None)
        scheduler = CampaignScheduler(JobStore(tmp_path), total_workers=1)
        scheduler.start()
        scheduler.submit(SPEC.replace(seed=1))
        survivor = scheduler.submit(SPEC.replace(seed=2))
        # With a 1-token budget the second job can only run if the first
        # one's token came back.
        assert scheduler.wait_idle(timeout=10)
        scheduler.shutdown()
        assert survivor.state == "complete"
        counters = scheduler.counters()
        assert counters["service.workers_active"] == 0
        assert counters["service.jobs_failed"] == 1
        assert counters["service.jobs_completed"] == 1
