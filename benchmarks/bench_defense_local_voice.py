"""§8.1 defense: on-device wake word + transcription (text-only API).

Before/after comparison of what voice-derived data leaves the home, per
device type, over the same skill workload."""

from repro.alexa import AVSEcho, AlexaCloud, AmazonAccount, Marketplace
from repro.core.report import render_table
from repro.data import categories as cat
from repro.data.domains import build_endpoint_registry
from repro.data.skill_catalog import build_catalog
from repro.defenses import LocalProcessingEcho, voice_exposure
from repro.netsim.router import Router
from repro.util.clock import SimClock
from repro.util.rng import Seed


def _compare_devices():
    seed = Seed(42)
    clock = SimClock()
    router = Router(build_endpoint_registry(), clock)
    catalog = build_catalog(seed)
    cloud = AlexaCloud(catalog, router, clock, seed)
    marketplace = Marketplace(catalog, cloud)
    skills = [s for s in catalog.top_skills(cat.HEALTH, 25) if s.active]

    results = {}
    replies_ok = {}
    for name, device_cls in (
        ("stock AVS Echo", AVSEcho),
        ("local-processing Echo", LocalProcessingEcho),
    ):
        account = AmazonAccount(
            email=f"{device_cls.__name__.lower()}@persona.example.com",
            persona=device_cls.__name__,
        )
        device = device_cls(
            f"dev-{device_cls.__name__}", account, router, cloud, seed
        )
        answered = 0
        for spec in skills:
            marketplace.install(account, spec.skill_id)
            replies = device.run_skill_session(spec)
            if any(r is not None for r in replies):
                answered += 1
        results[name] = voice_exposure(device.plaintext_log)
        replies_ok[name] = answered
    return results, replies_ok, len(skills)


def bench_defense_local_voice(benchmark):
    results, replies_ok, n_skills = benchmark.pedantic(
        _compare_devices, rounds=2, iterations=1
    )
    rows = [
        (
            name,
            exposure["audio_uploads"],
            exposure["text_uploads"],
            exposure["skill_voice_fields"],
            f"{replies_ok[name]}/{n_skills}",
        )
        for name, exposure in results.items()
    ]
    print()
    print(
        render_table(
            ["device", "audio uploads", "text uploads", "skill voice fields", "functional"],
            rows,
            title="§8.1 defense — local voice processing",
        )
    )

    stock = results["stock AVS Echo"]
    defended = results["local-processing Echo"]
    # The defense eliminates audio leaving the device entirely...
    assert stock["audio_uploads"] > 0
    assert defended["audio_uploads"] == 0
    assert defended["text_uploads"] > 0
    # ...including the voice fields skills would otherwise collect...
    assert stock["skill_voice_fields"] > 0
    assert defended["skill_voice_fields"] == 0
    # ...with no loss of functionality.
    assert replies_ok["local-processing Echo"] >= replies_ok["stock AVS Echo"] - 1
