"""tcpdump-style capture sessions.

The paper's methodology brackets each skill's lifecycle with
``tcpdump`` enable/disable on the RPi router so traffic can be attributed
cleanly per skill (§3.2).  :class:`CaptureSession` reproduces that: while a
session is active on the router, every packet the router forwards is
appended to it.

Capture is the hot path of the whole pipeline, so a session does its
grouping *as packets arrive*: every observed packet is routed into an
incremental :class:`~repro.netsim.packet.FlowTable` and its DNS answers
into a :class:`~repro.netsim.dns.DnsTable`.  When the session stops, the
flows are sealed once and every downstream analysis reads pre-grouped
flows and a pre-built DNS table in O(1) — the legacy post-hoc re-scan of
``packets`` survives only for sessions still actively capturing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.netsim.dns import DnsTable
from repro.netsim.packet import Flow, FlowTable, Packet, group_flows

__all__ = ["CaptureSession"]


@dataclass
class CaptureSession:
    """A bounded window of captured packets, labelled for attribution.

    Attributes
    ----------
    label:
        Attribution label, e.g. the skill id being exercised.
    device_filter:
        When set, only packets from/to this device are recorded (the paper
        gives each persona's Echo a unique IP for the same reason).
    """

    label: str
    device_filter: Optional[str] = None
    packets: List[Packet] = field(default_factory=list)
    active: bool = True
    _table: FlowTable = field(
        default_factory=FlowTable, repr=False, compare=False
    )
    _dns: DnsTable = field(default_factory=DnsTable, repr=False, compare=False)
    _sealed_flows: Optional[List[Flow]] = field(
        default=None, repr=False, compare=False
    )

    def observe(self, packet: Packet) -> None:
        """Record a packet if the session is active and the filter matches."""
        if not self.active:
            return
        if self.device_filter is not None and packet.device_id != self.device_filter:
            return
        self.packets.append(packet)
        self._table.add(packet)
        self._dns.add_packet(packet)

    def stop(self) -> "CaptureSession":
        """Freeze the session; further packets are ignored."""
        self.active = False
        return self

    def flows(self) -> List[Flow]:
        """The captured packets grouped into flows.

        On a stopped session this seals the incremental flow table once
        and returns the cached sealed flows on every subsequent call.  A
        still-active session re-groups its current snapshot instead (the
        table keeps growing, so sealing it would be premature).
        """
        if self.active:
            return group_flows(self.packets)
        if self._sealed_flows is None:
            self._sealed_flows = self._table.seal()
        return self._sealed_flows

    def dns_table(self) -> DnsTable:
        """IP→domain mapping recovered from this capture's DNS answers.

        Built incrementally during :meth:`observe` — reading it is free.
        """
        return self._dns

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def __len__(self) -> int:
        return len(self.packets)
