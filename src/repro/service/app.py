"""Audit-as-a-service: the HTTP surface over the campaign scheduler.

Stdlib-only (:mod:`http.server`) so the service runs anywhere the
package does.  One :class:`AuditService` owns a :class:`~repro.service.
jobs.JobStore` (durable jobs), a :class:`~repro.service.scheduler.
CampaignScheduler` (fair-share execution), and a threading HTTP server
exposing the job lifecycle:

========  ===================================  =============================
method    path                                 meaning
========  ===================================  =============================
POST      ``/campaigns``                       submit a CampaignSpec (JSON
                                               body) → 201 + job record
GET       ``/campaigns``                       list jobs
GET       ``/campaigns/{id}``                  one job's state
GET       ``/campaigns/{id}/events``           Server-Sent Events tail of
                                               the job's event log
GET       ``/campaigns/{id}/results``          export file listing
GET       ``/campaigns/{id}/results/{name}``   one export file's bytes
POST      ``/campaigns/{id}/cancel``           cancel a queued job
GET       ``/healthz``                         liveness + ``service.*``
                                               counters
========  ===================================  =============================

Spec validation happens in :meth:`CampaignSpec.from_dict` before a job
exists, so a bad body — unknown field, invalid backend, negative
workers — is a 400 with the same message the Python API raises, and
never a half-created job.

The SSE endpoint replays the job's ``events.jsonl`` (each line becomes
one ``data:`` frame) and then follows the file until the job reaches a
terminal state, closing with an ``event: end`` frame naming it.  Because
the log is canonical JSONL in the obs event schema, an SSE consumer and
a trace-file consumer parse identical records.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.core.campaign import CampaignSpec
from repro.core.iosim import is_enospc
from repro.service.jobs import JobStore, SubmitError, read_event_lines
from repro.service.scheduler import (
    CampaignScheduler,
    DrainingError,
    QueueFullError,
)

__all__ = ["AuditService"]

#: SSE follow-mode poll interval (seconds).
_SSE_POLL_SECONDS = 0.05

_CONTENT_TYPES = {
    ".csv": "text/csv; charset=utf-8",
    ".json": "application/json; charset=utf-8",
    ".jsonl": "application/x-ndjson; charset=utf-8",
}


class AuditService:
    """The audit service: durable jobs + scheduler + HTTP server.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` once started) — the form every in-process test uses.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        total_workers: int = 4,
        max_queue: Optional[int] = None,
        job_timeout: Optional[float] = None,
    ) -> None:
        self.root = Path(root)
        self.host = host
        self.store = JobStore(self.root)
        self.scheduler = CampaignScheduler(
            self.store,
            total_workers=total_workers,
            max_queue=max_queue,
            job_timeout=job_timeout,
        )
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Recover persisted jobs, start scheduling, start serving."""
        self.scheduler.start()
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="audit-http", daemon=True
        )
        self._thread.start()

    def stop(self, *, wait: bool = False) -> None:
        """Stop serving; optionally wait for running campaigns."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.scheduler.shutdown(wait=wait)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """SIGTERM-grade graceful shutdown.

        Stops admission (new submissions get 503), lets running
        campaigns finish (their events flush as they go; queued jobs
        stay durably queued for the next start), then stops serving.
        Returns ``True`` when everything running finished in time.
        """
        finished = self.scheduler.drain(timeout=timeout)
        self.stop(wait=False)
        return finished

    def __enter__(self) -> "AuditService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP requests onto the owning :class:`AuditService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-audit"

    @property
    def service(self) -> AuditService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging off: tests and CI read stdout for results

    # ------------------------------------------------------------------ #
    # Responses
    # ------------------------------------------------------------------ #

    def _send_json(
        self,
        status: int,
        payload: object,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _send_bytes(self, body: bytes, content_type: str) -> None:
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        path, query = _split_query(self.path)
        parts = [p for p in path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._get_healthz()
            elif parts == ["campaigns"]:
                self._get_campaigns()
            elif len(parts) == 2 and parts[0] == "campaigns":
                self._get_campaign(parts[1])
            elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "events":
                self._get_events(parts[1], query)
            elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "results":
                self._get_results_listing(parts[1])
            elif len(parts) == 4 and parts[0] == "campaigns" and parts[2] == "results":
                self._get_result_file(parts[1], parts[3])
            else:
                self._send_error_json(404, f"no such resource: {path}")
        except BrokenPipeError:
            pass  # client went away mid-stream

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
        path, _ = _split_query(self.path)
        parts = [p for p in path.split("/") if p]
        if parts == ["campaigns"]:
            self._post_campaign()
        elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "cancel":
            self._post_cancel(parts[1])
        else:
            self._send_error_json(404, f"no such resource: {path}")

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    def _get_healthz(self) -> None:
        from repro import __version__

        payload: Dict[str, object] = {"status": "ok", "version": __version__}
        payload.update(self.service.scheduler.counters())
        self._send_json(200, payload)

    def _post_campaign(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            spec = CampaignSpec.from_dict(payload)
        except (ValueError, TypeError) as exc:
            self._send_error_json(400, str(exc))
            return
        try:
            job = self.service.scheduler.submit(spec)
        except SubmitError as exc:
            self._send_error_json(400, str(exc))
            return
        except QueueFullError as exc:
            self._send_json(
                429,
                {"error": str(exc), "reason": "queue_full"},
                headers={"Retry-After": str(exc.retry_after)},
            )
            return
        except DrainingError as exc:
            self._send_json(
                503,
                {"error": str(exc), "reason": "draining"},
                headers={"Retry-After": "1"},
            )
            return
        except OSError as exc:
            if is_enospc(exc):
                # 507 Insufficient Storage: the spec never became a job;
                # nothing to recover, the caller resubmits once the
                # operator frees space.
                self._send_json(
                    507, {"error": str(exc), "reason": "storage_exhausted"}
                )
                return
            raise
        self._send_json(201, job.describe())

    def _get_campaigns(self) -> None:
        self._send_json(
            200, {"jobs": [job.describe() for job in self.service.store.list()]}
        )

    def _job_or_404(self, job_id: str):
        job = self.service.store.get(job_id)
        if job is None:
            self._send_error_json(404, f"no such job: {job_id}")
        return job

    def _get_campaign(self, job_id: str) -> None:
        job = self._job_or_404(job_id)
        if job is not None:
            self._send_json(200, job.describe())

    def _post_cancel(self, job_id: str) -> None:
        state = self.service.scheduler.cancel(job_id)
        if state is None:
            self._send_error_json(404, f"no such job: {job_id}")
            return
        self._send_json(200, {"id": job_id, "state": state})

    # -------------------------- results ------------------------------- #

    def _get_results_listing(self, job_id: str) -> None:
        job = self._job_or_404(job_id)
        if job is None:
            return
        files = []
        if job.out_dir.is_dir():
            files = sorted(
                p.name for p in job.out_dir.iterdir() if p.is_file()
            )
        self._send_json(200, {"id": job_id, "state": job.state, "files": files})

    def _get_result_file(self, job_id: str, name: str) -> None:
        job = self._job_or_404(job_id)
        if job is None:
            return
        target = (job.out_dir / name).resolve()
        # Traversal guard: the served file must be a direct child of the
        # job's out/ directory — "..", separators, and symlinks out all
        # fail the parent check.
        if target.parent != job.out_dir.resolve() or not target.is_file():
            self._send_error_json(404, f"no such result file: {name}")
            return
        content_type = _CONTENT_TYPES.get(
            target.suffix, "application/octet-stream"
        )
        self._send_bytes(target.read_bytes(), content_type)

    # --------------------------- events -------------------------------- #

    def _get_events(self, job_id: str, query: Dict[str, str]) -> None:
        """Server-Sent Events tail of the job's event log.

        Replays every event already logged, then (unless ``?follow=0``)
        polls the log until the job is terminal and fully drained,
        closing with ``event: end`` + the terminal state.  Uses chunked
        framing implicitly via connection close (SSE responses have no
        Content-Length).
        """
        job = self._job_or_404(job_id)
        if job is None:
            return
        follow = query.get("follow", "1") != "0"
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()

        sent = 0
        while True:
            lines = read_event_lines(job.events_path)
            for line in lines[sent:]:
                self.wfile.write(b"data: " + line.encode("utf-8") + b"\n\n")
            sent = len(lines)
            self.wfile.flush()
            if not follow or job.terminal:
                # one final drain so events emitted while we checked
                # the state are not lost
                lines = read_event_lines(job.events_path)
                for line in lines[sent:]:
                    self.wfile.write(b"data: " + line.encode("utf-8") + b"\n\n")
                break
            time.sleep(_SSE_POLL_SECONDS)
        if follow and job.terminal:
            self.wfile.write(
                b"event: end\ndata: " + job.state.encode("utf-8") + b"\n\n"
            )
        self.wfile.flush()
        self.close_connection = True


def _split_query(raw: str) -> Tuple[str, Dict[str, str]]:
    if "?" not in raw:
        return raw, {}
    path, _, query = raw.partition("?")
    params: Dict[str, str] = {}
    for pair in query.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        params[key] = value
    return path, params
