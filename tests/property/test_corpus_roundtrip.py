"""Property tests: corpus generation ↔ PoliCheck analyzer roundtrip.

With the phrasing noise disabled, the analyzer must recover exactly the
disclosure classes the policy was generated from, for every data type and
every skill — the corpus and the ontology are duals.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.policies.corpus as corpus_mod
from repro.data import datatypes as dt
from repro.data.skill_catalog import build_catalog
from repro.policies.corpus import build_corpus
from repro.policies.policheck.analyzer import PolicheckAnalyzer
from repro.policies.policheck.extraction import DataFlow
from repro.util.rng import Seed

AMAZON = "Amazon Technologies, Inc."


@pytest.fixture(scope="module")
def noiseless_corpus(monkeypatch_module):
    monkeypatch_module.setattr(corpus_mod, "PHRASING_NOISE_RATE", 0.0)
    catalog = build_catalog(Seed(42))
    return catalog, build_corpus(catalog, Seed(42))


@pytest.fixture(scope="module")
def monkeypatch_module():
    from _pytest.monkeypatch import MonkeyPatch

    patcher = MonkeyPatch()
    yield patcher
    patcher.undo()


class TestNoiselessRoundtrip:
    def test_every_datatype_class_recovered(self, noiseless_corpus):
        catalog, corpus = noiseless_corpus
        analyzer = PolicheckAnalyzer(corpus)
        mismatches = []
        for doc in corpus:
            spec = catalog.by_id(doc.skill_id)
            for data_type in spec.data_types:
                truth = doc.truth_datatypes.get(data_type, "omitted")
                flow = DataFlow(doc.skill_id, data_type, AMAZON)
                predicted = analyzer.classify_datatype_flow(flow).classification
                if predicted != truth:
                    mismatches.append((doc.skill_id, data_type, truth, predicted))
        assert mismatches == []

    def test_platform_disclosure_recovered(self, noiseless_corpus):
        catalog, corpus = noiseless_corpus
        categories = {
            AMAZON: (
                "analytic provider",
                "advertising network",
                "platform provider",
                "voice assistant service",
            )
        }
        analyzer = PolicheckAnalyzer(corpus, org_categories=categories)
        for doc in corpus:
            truth = doc.truth_endpoints[AMAZON]
            flow = DataFlow(doc.skill_id, None, AMAZON)
            predicted = analyzer.classify_endpoint_flow(flow).classification
            assert predicted == truth, doc.skill_id


class TestSeedSweep:
    """The roundtrip + quota invariants hold for arbitrary seeds."""

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_catalog_quota_invariants(self, seed_root):
        catalog = build_catalog(Seed(seed_root))
        assert len(catalog) == 450
        assert len(catalog.active_skills) == 446
        assert (
            sum(1 for s in catalog.active_skills if s.contacts_third_party) == 31
        )
        downloadable = sum(
            1 for s in catalog if s.policy and s.policy.downloadable
        )
        assert downloadable == 188

    @settings(max_examples=3, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_corpus_size_invariant(self, seed_root):
        catalog = build_catalog(Seed(seed_root))
        corpus = build_corpus(catalog, Seed(seed_root))
        assert len(corpus) == 188
