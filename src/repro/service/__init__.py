"""Audit-as-a-service: run measurement campaigns over HTTP.

The paper's audit framework is useful to people who don't want to drive
a Python API: this package turns a :class:`~repro.core.campaign.
CampaignSpec` — the one serializable description of a campaign — into a
job you can submit, watch, and download over plain HTTP.

Three layers, one per module:

* :mod:`repro.service.jobs` — durable job state.  Each job owns a
  directory (spec, state, event log, exports, checkpoint/segment
  namespaces); state writes are atomic, so a killed service recovers
  every in-flight job on restart and resumes it from its own
  crash-safe checkpoints.
* :mod:`repro.service.scheduler` — fair-share execution.  Strict-FIFO
  admission under a worker-token budget bounds total concurrency while
  letting multiple tenants' campaigns (different seeds, isolated
  namespaces) run side by side.  Backpressure and resilience live here
  too: an optional bounded queue (overflow → :class:`QueueFullError` →
  HTTP 429 + ``Retry-After``), a graceful ``drain()`` (stop admission,
  finish running jobs, keep queued ones durably queued for the next
  start), and a per-job wall-clock watchdog that fails hung jobs and
  frees their worker tokens.
* :mod:`repro.service.app` — the HTTP surface.  Stdlib
  ``ThreadingHTTPServer``; submit specs as JSON, tail progress as
  Server-Sent Events, download export files whose bytes are identical
  to a local ``repro run`` of the same spec.  A full disk surfaces as
  507 with ``reason="storage_exhausted"`` — never a wedged worker.

Start one from the CLI (``repro serve --root jobs/``) or in process::

    from repro.service import AuditService
    with AuditService("jobs", port=0, total_workers=4) as service:
        print(service.url)
"""

from repro.service.app import AuditService
from repro.service.jobs import (
    JOB_SCHEMA_VERSION,
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobEventWriter,
    JobStore,
    SubmitError,
)
from repro.service.scheduler import (
    CampaignScheduler,
    DrainingError,
    QueueFullError,
    worker_cost,
)

__all__ = [
    "AuditService",
    "CampaignScheduler",
    "DrainingError",
    "JOB_SCHEMA_VERSION",
    "JOB_STATES",
    "Job",
    "JobEventWriter",
    "JobStore",
    "QueueFullError",
    "SubmitError",
    "TERMINAL_STATES",
    "worker_cost",
]
