"""Integration tests for the PoliCheck flow-extraction + analysis pipeline."""

import pytest

from repro.core.compliance import (
    analyze_compliance,
    policy_availability,
    run_validation_study,
)
from repro.data import categories as cat
from repro.data import datatypes as dt
from repro.policies.policheck.extraction import (
    extract_datatype_flows,
    extract_endpoint_flows,
)
from repro.util.rng import Seed

AMAZON = "Amazon Technologies, Inc."


class TestFlowExtraction:
    def test_datatype_flows_only_target_amazon(self, small_dataset):
        for artifacts in small_dataset.interest_personas:
            flows = extract_datatype_flows(artifacts.avs_plaintext)
            assert flows
            assert all(f.entity == AMAZON for f in flows)

    def test_datatype_flows_match_catalog_ground_truth(self, small_dataset):
        catalog = small_dataset.world.catalog
        artifacts = small_dataset.artifacts(cat.PETS)
        flows = extract_datatype_flows(artifacts.avs_plaintext)
        by_skill = {}
        for flow in flows:
            by_skill.setdefault(flow.skill_id, set()).add(flow.data_type)
        for skill_id, observed in by_skill.items():
            assert observed == set(catalog.by_id(skill_id).data_types)

    def test_voice_recording_observed_for_every_skill(self, small_dataset):
        artifacts = small_dataset.artifacts(cat.RELIGION)
        flows = extract_datatype_flows(artifacts.avs_plaintext)
        skills_with_voice = {
            f.skill_id for f in flows if f.data_type == dt.VOICE_RECORDING
        }
        assert skills_with_voice == set(artifacts.skill_captures)

    def test_endpoint_flows_resolve_organizations(self, small_dataset):
        world = small_dataset.world
        artifacts = small_dataset.artifacts(cat.CONNECTED_CAR)
        flows = extract_endpoint_flows(artifacts.skill_captures, world.org_resolver())
        orgs = {f.entity for f in flows}
        assert AMAZON in orgs

    def test_garmin_endpoint_flows_include_third_parties(self, small_dataset):
        world = small_dataset.world
        artifacts = small_dataset.artifacts(cat.CONNECTED_CAR)
        garmin_id = world.catalog.by_name("Garmin").skill_id
        if garmin_id not in artifacts.skill_captures:
            pytest.skip("Garmin outside the scaled-down install set")
        flows = extract_endpoint_flows(
            {garmin_id: artifacts.skill_captures[garmin_id]}, world.org_resolver()
        )
        orgs = {f.entity for f in flows}
        assert "Chartable Holding Inc" in orgs


class TestCompliancePipeline:
    @pytest.fixture(scope="class")
    def compliance(self, small_dataset):
        world = small_dataset.world
        return analyze_compliance(
            small_dataset, world.corpus, world.org_resolver(), world.org_categories()
        )

    def test_every_flow_classified(self, compliance):
        for disclosure in compliance.datatype_disclosures:
            assert disclosure.classification in {
                "clear",
                "vague",
                "omitted",
                "no policy",
            }

    def test_no_policy_iff_undownloadable(self, small_dataset, compliance):
        corpus = small_dataset.world.corpus
        for disclosure in compliance.datatype_disclosures:
            has_doc = corpus.get(disclosure.flow.skill_id) is not None
            assert (disclosure.classification == "no policy") == (not has_doc)

    def test_validation_study_scores(self, small_dataset, compliance):
        report = run_validation_study(
            compliance, small_dataset.world.corpus, Seed(1), sample_size=30
        )
        assert 0.6 <= report.micro_f1 <= 1.0
        assert report.n_flows > 0

    def test_availability_matches_fetches(self, small_dataset):
        pa = policy_availability(small_dataset)
        assert pa.total_skills == len(small_dataset.policy_fetches)
        assert pa.downloadable <= pa.with_link
