"""DNS simulation.

Devices resolve domain names through the router's :class:`DnsServer`, which
answers from the :class:`~repro.netsim.endpoints.EndpointRegistry`.  Each
resolution emits query/response packets into the capture path — this is how
the auditing framework later maps the IPs of encrypted flows back to domain
names (§3.2 "Inferring origin").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.netsim.endpoints import EndpointRegistry
from repro.netsim.packet import Packet

__all__ = ["DnsRecord", "DnsServer", "DnsTable", "build_dns_table"]

DNS_PORT = 53


@dataclass(frozen=True)
class DnsRecord:
    """An A-record answer: domain → IP at a given time."""

    domain: str
    ip: str
    ttl: int = 300


class DnsServer:
    """Authoritative resolver for the simulated Internet.

    Maintains a per-device resolution log so the router can emit DNS
    packets, and a global answer log used by captures.
    """

    def __init__(self, registry: EndpointRegistry) -> None:
        self._registry = registry
        self._cache: Dict[str, DnsRecord] = {}
        self.query_count = 0

    def resolve(self, domain: str) -> DnsRecord:
        """Resolve ``domain`` to an A record; raises KeyError if unknown."""
        self.query_count += 1
        record = self._cache.get(domain)
        if record is None:
            endpoint = self._registry.require(domain)
            record = DnsRecord(domain=domain, ip=endpoint.ip)
            self._cache[domain] = record
        return record


class DnsTable:
    """IP → domain mapping recovered from DNS packets in a capture.

    Mirrors the paper's approach: the auditor does not get to query the
    registry, only to read DNS answers that appeared on the wire.
    Capture sessions feed packets in as they are observed
    (:meth:`add_packet`), so the table is complete the moment the capture
    stops — no post-hoc re-scan of the packet list.
    """

    def __init__(self) -> None:
        self._ip_to_domain: Dict[str, str] = {}

    def add(self, record: DnsRecord) -> None:
        self._ip_to_domain[record.ip] = record.domain

    def add_packet(self, packet: Packet) -> None:
        """Ingest one packet, recording any DNS answers it carries."""
        payload = packet.payload
        if payload is None or payload.get("kind") != "dns-response":
            return
        for answer in payload.get("answers", []):
            self._ip_to_domain[answer["ip"]] = answer["domain"]

    def domain_for_ip(self, ip: str) -> Optional[str]:
        return self._ip_to_domain.get(ip)

    def __len__(self) -> int:
        return len(self._ip_to_domain)


def build_dns_table(packets: Iterable[Packet]) -> DnsTable:
    """Recover the IP→domain table from DNS response packets in a capture."""
    table = DnsTable()
    for packet in packets:
        table.add_packet(packet)
    return table
