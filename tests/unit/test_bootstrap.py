"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.core.stats import bootstrap_ci


class TestBootstrapCi:
    def test_interval_brackets_point_estimate(self):
        rng = np.random.default_rng(7)
        sample = rng.lognormal(-2.5, 1.5, 500)
        low, high = bootstrap_ci(sample, statistic=np.median)
        assert low <= float(np.median(sample)) <= high

    def test_coverage_of_true_median(self):
        # Across many independent samples, the 95% interval should cover
        # the true median most of the time (allow generous slack).
        rng = np.random.default_rng(11)
        true_median = float(np.exp(-2.5))
        covered = 0
        for i in range(20):
            sample = rng.lognormal(-2.5, 1.5, 200)
            low, high = bootstrap_ci(sample, statistic=np.median, seed=i)
            if low <= true_median <= high:
                covered += 1
        assert covered >= 16

    def test_interval_ordered(self):
        low, high = bootstrap_ci([1.0, 2.0, 3.0, 4.0, 5.0])
        assert low <= high

    def test_wider_confidence_wider_interval(self):
        rng = np.random.default_rng(8)
        sample = rng.normal(0, 1, 100)
        narrow = bootstrap_ci(sample, confidence=0.80)
        wide = bootstrap_ci(sample, confidence=0.99)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_deterministic_per_seed(self):
        sample = list(range(50))
        assert bootstrap_ci(sample, seed=3) == bootstrap_ci(sample, seed=3)
        assert bootstrap_ci(sample, seed=3) != bootstrap_ci(sample, seed=4)

    def test_mean_statistic(self):
        rng = np.random.default_rng(9)
        sample = rng.normal(10, 1, 200)
        low, high = bootstrap_ci(sample, statistic=np.mean)
        assert low < 10 < high
        assert high - low < 1.0  # se ~ 1/sqrt(200)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_degenerate_sample(self):
        low, high = bootstrap_ci([2.0] * 30)
        assert low == high == 2.0
