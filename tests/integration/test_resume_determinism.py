"""Kill-and-resume equivalence for checkpointed campaigns.

The tentpole invariant of the crash-safe execution layer: a campaign
interrupted after ≥1 checkpointed shard and then resumed must produce
exports **byte-identical** to an uninterrupted run of the same seed and
config — under healthy and mild-faulted networks, on both worker
backends.  Shard artifacts are seed-deterministic, so a resumed shard
loaded from the journal is indistinguishable from a recomputed one; the
tests here pin that end to end.

Two interruption styles are exercised:

* **Deterministic interruption** — injected worker crashes exhaust one
  shard's retry budget under ``on_shard_failure="degrade"``, leaving a
  partial journal exactly like a preempted run's, with no race on *when*
  the kill lands.
* **Real SIGKILL** — a subprocess running the campaign is killed -9 as
  soon as its first checkpoint lands, then the journal is resumed in
  this process.  (If the subprocess wins the race and finishes, resume
  degenerates to an all-checkpoint load — equality must hold either way.)
"""

import hashlib
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.campaign import run_campaign
from repro.core.checkpoint import CheckpointError
from repro.core.experiment import ExperimentConfig
from repro.core.export import EXPORT_FILES, export_dataset
from repro.core.parallel import WorkerFaultPlan
from repro.util.rng import Seed

SEED_ROOT = 2026
WORKERS = 4

TINY = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)


def _config(fault_profile):
    import dataclasses

    return dataclasses.replace(TINY, fault_profile=fault_profile)


def _export_digests(dataset, out_dir):
    export_dataset(dataset, out_dir)
    return {
        name: hashlib.sha256((out_dir / name).read_bytes()).hexdigest()
        for name in EXPORT_FILES
    }


@pytest.fixture(scope="module")
def serial_digests(tmp_path_factory):
    """Uninterrupted serial exports per fault profile — the gold bytes."""
    digests = {}
    for profile in ("none", "mild"):
        dataset = run_campaign(_config(profile), Seed(SEED_ROOT))
        out = tmp_path_factory.mktemp(f"serial-{profile}")
        digests[profile] = _export_digests(dataset, out)
    return digests


class TestKillAndResume:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("profile", ["none", "mild"])
    def test_interrupted_then_resumed_matches_serial(
        self, tmp_path, serial_digests, backend, profile
    ):
        """Crash one shard out of the run, resume, compare every byte."""
        config = _config(profile)
        ckpt = tmp_path / "journal"
        # Shard 3 crashes on every attempt: the run completes degraded,
        # leaving the journal exactly as a mid-run kill would — some
        # shards checkpointed, one missing.
        faults = WorkerFaultPlan.targeted(
            {(3, attempt): "crash" for attempt in (1, 2, 3)}
        )
        partial = run_campaign(
            config,
            Seed(SEED_ROOT),
            parallel=True,
            workers=WORKERS,
            backend=backend,
            checkpoint_dir=ckpt,
            worker_faults=faults,
            on_shard_failure="degrade",
        )
        assert partial.missing_personas  # the interruption really lost data
        assert (ckpt / "journal.json").is_file()

        resumed = run_campaign(
            config,
            Seed(SEED_ROOT),
            parallel=True,
            workers=WORKERS,
            backend=backend,
            checkpoint_dir=ckpt,
            resume=True,
        )
        assert resumed.missing_personas == ()
        assert (
            _export_digests(resumed, tmp_path / "resumed")
            == serial_digests[profile]
        )
        manifest = resumed.obs.manifest
        assert manifest.resumed and manifest.checkpointed
        # Three shards came from the journal, the crashed one was rerun.
        checkpoint_shards = [
            outcomes
            for outcomes in manifest.shard_attempts
            if outcomes == ("checkpoint",)
        ]
        assert len(checkpoint_shards) == WORKERS - 1
        assert resumed.obs.metrics.value("supervisor.checkpoints_loaded") == (
            WORKERS - 1
        )

    def test_sigkill_mid_run_then_resume(self, tmp_path, serial_digests):
        """A real -9 on a process-backend campaign, resumed to gold bytes."""
        ckpt = tmp_path / "journal"
        script = (
            "from repro.core.campaign import run_campaign\n"
            "from repro.core.experiment import ExperimentConfig\n"
            f"config = ExperimentConfig(skills_per_persona=2, pre_iterations=1,"
            f" post_iterations=1, crawl_sites=2, prebid_discovery_target=5,"
            f" audio_hours=0.5)\n"
            f"run_campaign(config, {SEED_ROOT}, parallel=True,"
            f" workers={WORKERS}, backend='process',"
            f" checkpoint_dir={str(ckpt)!r})\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        victim = subprocess.Popen([sys.executable, "-c", script], env=env)
        try:
            # Kill as soon as the first shard checkpoint lands.  If the
            # campaign finishes first, resume is an all-checkpoint load
            # and the equality below must hold regardless.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and victim.poll() is None:
                if list(ckpt.glob("shard-*.pkl")):
                    break
                time.sleep(0.05)
            if victim.poll() is None:
                victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()
        assert list(ckpt.glob("shard-*.pkl")), "no shard ever checkpointed"

        resumed = run_campaign(
            TINY,
            Seed(SEED_ROOT),
            parallel=True,
            workers=WORKERS,
            backend="process",
            checkpoint_dir=ckpt,
            resume=True,
        )
        assert (
            _export_digests(resumed, tmp_path / "resumed")
            == serial_digests["none"]
        )


class TestWatchdogIntegration:
    def test_hung_shard_is_reaped_and_run_completes(
        self, tmp_path, serial_digests
    ):
        """An injected hang never aborts the campaign: the wall-clock
        watchdog reaps the worker and the retry completes the shard."""
        faults = WorkerFaultPlan.targeted({(1, 1): "hang"}, hang_seconds=3600)
        dataset = run_campaign(
            TINY,
            Seed(SEED_ROOT),
            parallel=True,
            workers=WORKERS,
            backend="thread",
            worker_faults=faults,
            shard_timeout=20.0,
        )
        assert (
            _export_digests(dataset, tmp_path / "out")
            == serial_digests["none"]
        )
        manifest = dataset.obs.manifest
        assert manifest.shard_attempts[1] == ("hang", "ok")
        assert dataset.obs.metrics.value("supervisor.hangs_reaped") == 1


class TestResumeValidation:
    def _checkpointed_run(self, ckpt):
        return run_campaign(
            TINY,
            Seed(SEED_ROOT),
            parallel=True,
            workers=WORKERS,
            backend="thread",
            checkpoint_dir=ckpt,
        )

    def test_resume_with_wrong_seed_rejected(self, tmp_path):
        self._checkpointed_run(tmp_path / "journal")
        with pytest.raises(CheckpointError, match="seed_root"):
            run_campaign(
                TINY,
                Seed(SEED_ROOT + 1),
                parallel=True,
                workers=WORKERS,
                backend="thread",
                checkpoint_dir=tmp_path / "journal",
                resume=True,
            )

    def test_resume_with_wrong_config_rejected(self, tmp_path):
        self._checkpointed_run(tmp_path / "journal")
        with pytest.raises(CheckpointError, match="config_fingerprint"):
            run_campaign(
                _config("mild"),
                Seed(SEED_ROOT),
                parallel=True,
                workers=WORKERS,
                backend="thread",
                checkpoint_dir=tmp_path / "journal",
                resume=True,
            )

    def test_resume_with_wrong_worker_count_rejected(self, tmp_path):
        self._checkpointed_run(tmp_path / "journal")
        with pytest.raises(CheckpointError, match="plan_digest"):
            run_campaign(
                TINY,
                Seed(SEED_ROOT),
                parallel=True,
                workers=WORKERS - 1,
                backend="thread",
                checkpoint_dir=tmp_path / "journal",
                resume=True,
            )

    def test_resume_without_checkpoint_dir_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_campaign(
                TINY, Seed(SEED_ROOT), parallel=True, resume=True
            )

    def test_supervisor_knobs_require_parallel(self):
        with pytest.raises(ValueError, match="parallel"):
            run_campaign(TINY, Seed(SEED_ROOT), checkpoint_dir="/tmp/x")
        with pytest.raises(ValueError, match="parallel"):
            run_campaign(TINY, Seed(SEED_ROOT), on_shard_failure="degrade")
        with pytest.raises(ValueError, match="parallel"):
            run_campaign(TINY, Seed(SEED_ROOT), shard_timeout=5.0)
