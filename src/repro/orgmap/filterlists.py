"""Adblock-style filter-list engine.

The paper detects advertising and tracking endpoints with Pi-hole filter
lists plus manual investigation (§4.2).  This module implements the subset
of Adblock Plus syntax those lists use for host blocking:

* ``||example.com^``   — block the domain and all subdomains;
* ``|https://host/…``  — treated as a host anchor on ``host``;
* plain ``host.name``  — exact host match;
* ``@@||example.com^`` — exception (never block);
* ``! comment`` / blank lines — ignored.

Path-based rules are out of scope: the auditing pipeline classifies
*endpoints*, not URLs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

__all__ = ["FilterRule", "FilterList", "parse_rules"]


@dataclass(frozen=True)
class FilterRule:
    """One parsed host rule."""

    host: str
    match_subdomains: bool
    is_exception: bool

    def matches(self, domain: str) -> bool:
        domain = domain.lower().rstrip(".")
        if domain == self.host:
            return True
        return self.match_subdomains and domain.endswith("." + self.host)


def parse_rules(lines: Iterable[str]) -> List[FilterRule]:
    """Parse filter-list text into rules, skipping comments and unknowns."""
    rules: List[FilterRule] = []
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith(("!", "#", "[")):
            continue
        is_exception = line.startswith("@@")
        if is_exception:
            line = line[2:]
        if line.startswith("||"):
            host = line[2:].split("^")[0].split("/")[0].lower()
            subdomains = True
        elif line.startswith("|"):
            stripped = line.lstrip("|")
            for scheme in ("https://", "http://"):
                if stripped.startswith(scheme):
                    stripped = stripped[len(scheme):]
                    break
            host = stripped.split("/")[0].split("^")[0].lower()
            subdomains = False
        else:
            host = line.split("^")[0].split("/")[0].lower()
            subdomains = False
        if not host or "." not in host:
            continue  # unsupported rule flavor; real parsers skip these too
        rules.append(
            FilterRule(host=host, match_subdomains=subdomains, is_exception=is_exception)
        )
    return rules


class FilterList:
    """Compiled filter list with exception handling.

    A domain is *blocked* (classified as advertising/tracking) when it
    matches at least one block rule and no exception rule — the same
    precedence Adblock Plus uses.

    Verdicts are memoized per input string: rule matching is O(rules)
    per query, the rule set is frozen after construction, and the
    campaign asks about the same domains millions of times (every flow
    classification, every blocked-router decision).  ``cache_hits``
    feeds the ``analysis.domain_cache_hits`` observability counter; pass
    ``memoize=False`` for the uncached pre-optimization behaviour (the
    perf benchmark's legacy baseline).
    """

    def __init__(self, rules: Iterable[FilterRule], memoize: bool = True) -> None:
        self._block: List[FilterRule] = []
        self._allow: List[FilterRule] = []
        for rule in rules:
            (self._allow if rule.is_exception else self._block).append(rule)
        # Fast path for exact (non-subdomain) hosts.
        self._exact_block: Set[str] = {
            r.host for r in self._block if not r.match_subdomains
        }
        self._memoize = memoize
        self._verdicts: Dict[str, bool] = {}
        #: Memoized verdicts served without re-matching the rule set.
        self.cache_hits = 0

    @classmethod
    def from_text(cls, text: str) -> "FilterList":
        return cls(parse_rules(text.splitlines()))

    @classmethod
    def from_hosts(
        cls, hosts: Iterable[str], match_subdomains: bool = True
    ) -> "FilterList":
        """Build a list that blocks the given hosts (and their subdomains)."""
        return cls(
            FilterRule(host=h.lower(), match_subdomains=match_subdomains, is_exception=False)
            for h in hosts
        )

    def is_blocked(self, domain: str) -> bool:
        """Whether ``domain`` is classified as advertising/tracking."""
        if self._memoize:
            verdict = self._verdicts.get(domain)
            if verdict is not None:
                self.cache_hits += 1
                return verdict
        verdict = self._is_blocked_uncached(domain)
        if self._memoize:
            self._verdicts[domain] = verdict
        return verdict

    def _is_blocked_uncached(self, domain: str) -> bool:
        domain = domain.lower().rstrip(".")
        for rule in self._allow:
            if rule.matches(domain):
                return False
        if domain in self._exact_block:
            return True
        return any(rule.matches(domain) for rule in self._block)

    def classify(self, domains: Iterable[str]) -> Tuple[List[str], List[str]]:
        """Partition domains into (advertising_tracking, functional)."""
        ad_tracking: List[str] = []
        functional: List[str] = []
        for domain in domains:
            (ad_tracking if self.is_blocked(domain) else functional).append(domain)
        return ad_tracking, functional

    def __len__(self) -> int:
        return len(self._block) + len(self._allow)
