"""Tests for the browser, cookie jar, and web universe."""

import pytest

from repro.alexa.account import AmazonAccount
from repro.netsim.http import HttpResponse
from repro.util.clock import SimClock
from repro.web.browser import Browser, BrowserProfile, CookieJar, WebUniverse


@pytest.fixture
def universe():
    u = WebUniverse()
    u.register("site.example.com", lambda req: HttpResponse(200, body={"hi": 1}))
    u.register(
        "setter.example.com",
        lambda req: HttpResponse(200, set_cookies={"sid": "abc"}),
    )
    return u


@pytest.fixture
def browser(universe):
    return Browser(BrowserProfile("prof-1", "tester"), universe, SimClock())


class TestCookieJar:
    def test_set_get_by_registrable_domain(self):
        jar = CookieJar()
        jar.set("sub.example.com", "a", "1")
        assert jar.get("other.example.com") == {"a": "1"}

    def test_different_sites_isolated(self):
        jar = CookieJar()
        jar.set("a.com", "x", "1")
        assert jar.get("b.com") == {}

    def test_len_counts_cookies(self):
        jar = CookieJar()
        jar.set("a.com", "x", "1")
        jar.set("a.com", "y", "2")
        jar.set("b.com", "x", "3")
        assert len(jar) == 3


class TestBrowser:
    def test_get_returns_body(self, browser):
        response = browser.get("https://site.example.com/")
        assert response.ok and response.body["hi"] == 1

    def test_request_logged(self, browser):
        browser.get("https://site.example.com/")
        assert len(browser.request_log) == 1
        assert browser.request_log[0].url == "https://site.example.com/"

    def test_set_cookie_persisted(self, browser):
        browser.get("https://setter.example.com/")
        assert browser.profile.jar.get("setter.example.com")["sid"] == "abc"

    def test_uid_minted_on_first_visit(self, browser):
        browser.get("https://site.example.com/")
        assert "uid" in browser.profile.jar.get("site.example.com")

    def test_uid_deterministic_per_profile(self, universe):
        clock = SimClock()
        a = Browser(BrowserProfile("p1", "t"), universe, clock)
        b = Browser(BrowserProfile("p1", "t"), universe, clock)
        a.get("https://site.example.com/")
        b.get("https://site.example.com/")
        assert a.profile.jar.get("site.example.com") == b.profile.jar.get(
            "site.example.com"
        )

    def test_uid_differs_across_profiles(self, universe):
        clock = SimClock()
        a = Browser(BrowserProfile("p1", "t"), universe, clock)
        b = Browser(BrowserProfile("p2", "t"), universe, clock)
        a.get("https://site.example.com/")
        b.get("https://site.example.com/")
        assert a.profile.jar.get("site.example.com") != b.profile.jar.get(
            "site.example.com"
        )

    def test_redirect_chain_followed_and_logged(self, universe, browser):
        universe.register(
            "hop1.example.com",
            lambda req: HttpResponse(
                302, redirect_url="https://hop2.example.com/land"
            ),
        )
        universe.register("hop2.example.com", lambda req: HttpResponse(200))
        response = browser.get("https://hop1.example.com/start")
        assert response.ok
        chain = [r for r in browser.request_log if r.chain_root.endswith("/start")]
        assert len(chain) == 2
        assert chain[0].redirect_to == "https://hop2.example.com/land"

    def test_redirect_loop_guard(self, universe, browser):
        universe.register(
            "loop.example.com",
            lambda req: HttpResponse(302, redirect_url="https://loop.example.com/"),
        )
        with pytest.raises(RuntimeError, match="redirect loop"):
            browser.get("https://loop.example.com/")

    def test_unknown_site_404(self, browser):
        assert browser.get("https://missing.example.com/").status == 404

    def test_clock_advances_per_request(self, browser):
        before = browser.clock.now
        browser.get("https://site.example.com/")
        assert browser.clock.now > before


class TestAmazonLogin:
    def test_login_sets_cookies_on_amazon_properties(self):
        profile = BrowserProfile("prof-2", "tester")
        account = AmazonAccount(email="a@example.com", persona="tester")
        profile.login_amazon(account)
        assert profile.jar.get("www.amazon.com")["session-id"] == account.session_cookie
        assert (
            profile.jar.get("s.amazon-adsystem.com")["session-id"]
            == account.session_cookie
        )
        assert profile.account is account
