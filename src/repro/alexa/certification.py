"""Skill certification (paper §2.2, §4.2).

Amazon certifies skills before they publish [5], yet prior work showed
policy-violating skills get certified [56], [87], and the paper itself
finds six non-streaming skills shipping advertising/tracking services in
violation of the Alexa advertising policy [2] — unflagged.

This module implements both sides:

* :class:`CertificationChecker` — the *declared-metadata* review Amazon
  actually performs: it sees the skill's manifest (category, permissions,
  streaming flag, policy link), not its runtime traffic.  That blind spot
  is why the violators pass.
* :func:`audit_certified_skills` — the auditor's post-hoc check using
  observed traffic, which is exactly how the paper catches the six.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.data.skill_catalog import SkillCatalog, SkillSpec
from repro.netsim.endpoints import registrable_domain
from repro.orgmap.filterlists import FilterList

#: Registrable domains owned by the platform; platform telemetry is not a
#: skill's advertising (it is Amazon's own tracking, measured in Table 2).
_PLATFORM_BASE_DOMAINS = frozenset(
    {
        "amazon.com",
        "amcs-tachyon.com",
        "amazonalexa.com",
        "cloudfront.net",
        "amazonaws.com",
        "alexa.a2z.com",
        "amazon-dss.com",
        "amazon-adsystem.com",
        "acsechocaptiveportal.com",
        "fireoscaptiveportal.com",
    }
)

__all__ = [
    "CertificationResult",
    "CertificationChecker",
    "PolicyViolation",
    "audit_certified_skills",
]


@dataclass(frozen=True)
class CertificationResult:
    """Outcome of the marketplace's pre-publication review."""

    skill_id: str
    certified: bool
    notes: Tuple[str, ...] = ()


class CertificationChecker:
    """Amazon's certification review over *declared* skill metadata.

    The checks mirror the published requirements [5]-[7]: a privacy
    policy is required when permissions are requested, and ads are only
    allowed on streaming skills.  Crucially, the review never observes
    the skill's network behaviour — advertising baked into fetched audio
    content is invisible to it.
    """

    def review(self, spec: SkillSpec) -> CertificationResult:
        notes: List[str] = []
        if spec.permissions and (spec.policy is None or not spec.policy.has_link):
            notes.append("permissions requested without a privacy policy link")
        # The declared manifest carries no ad-network information, so the
        # advertising-policy check can only trust the developer.
        certified = not notes
        return CertificationResult(
            skill_id=spec.skill_id, certified=certified, notes=tuple(notes)
        )

    def review_catalog(self, catalog: SkillCatalog) -> Dict[str, CertificationResult]:
        return {s.skill_id: self.review(s) for s in catalog.active_skills}


@dataclass(frozen=True)
class PolicyViolation:
    """A certified skill whose observed behaviour violates platform policy."""

    skill_id: str
    rule: str
    evidence: Tuple[str, ...]


def audit_certified_skills(
    skills: Iterable[SkillSpec],
    observed_endpoints: Dict[str, Sequence[str]],
    filter_list: FilterList,
    certifications: Dict[str, CertificationResult],
) -> List[PolicyViolation]:
    """The paper's §4.2 audit: find certified skills that violate the
    advertising policy in practice.

    ``observed_endpoints`` maps skill id → domains seen in its traffic
    (from the per-skill captures).  A non-streaming skill contacting
    advertising/tracking services violates the Alexa advertising policy
    [2], which restricts ads to streaming skills.
    """
    violations: List[PolicyViolation] = []
    for spec in skills:
        result = certifications.get(spec.skill_id)
        if result is None or not result.certified:
            continue
        if spec.is_streaming:
            continue
        ad_domains = tuple(
            sorted(
                d
                for d in observed_endpoints.get(spec.skill_id, ())
                if filter_list.is_blocked(d)
                and registrable_domain(d) not in _PLATFORM_BASE_DOMAINS
            )
        )
        if ad_domains:
            violations.append(
                PolicyViolation(
                    skill_id=spec.skill_id,
                    rule="non-streaming skill includes advertising/tracking services",
                    evidence=ad_domains,
                )
            )
    return violations
