"""HTTP message models.

Application traffic in the simulation is HTTP(-over-TLS).  These models are
what a device hands to the router; whether an observer sees the parsed
message or only ciphertext metadata is decided by the vantage point
(:mod:`repro.netsim.router`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, urlencode, urlparse

__all__ = ["HttpRequest", "HttpResponse", "estimate_size"]


@dataclass(frozen=True)
class HttpRequest:
    """An HTTP request issued by a device or browser.

    ``body`` carries the parsed application payload (e.g. the data types a
    skill uploads); ``cookies`` carry client-side identifiers, which is what
    cookie-sync detection inspects.
    """

    method: str
    url: str
    headers: Mapping[str, str] = field(default_factory=dict)
    cookies: Mapping[str, str] = field(default_factory=dict)
    body: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.method not in {"GET", "POST", "PUT", "DELETE", "HEAD"}:
            raise ValueError(f"unsupported HTTP method: {self.method}")
        parsed = urlparse(self.url)
        if parsed.scheme not in {"http", "https"} or not parsed.netloc:
            raise ValueError(f"invalid URL: {self.url}")

    @property
    def host(self) -> str:
        return urlparse(self.url).netloc.split(":")[0]

    @property
    def path(self) -> str:
        return urlparse(self.url).path or "/"

    @property
    def query(self) -> Dict[str, str]:
        """Query parameters, last value winning for repeated keys.

        Kept for backward compatibility; sync/ID detection should use
        :attr:`query_pairs` or :meth:`query_values`, which preserve
        duplicated parameters (``uid=a&uid=b`` carries *two* IDs).
        """
        return dict(parse_qsl(urlparse(self.url).query))

    @property
    def query_pairs(self) -> List[Tuple[str, str]]:
        """All query parameters in URL order, duplicates preserved."""
        return parse_qsl(urlparse(self.url).query)

    def query_values(self, key: str) -> List[str]:
        """Every value carried for ``key``, in URL order."""
        return [value for name, value in self.query_pairs if name == key]

    @property
    def is_https(self) -> bool:
        return urlparse(self.url).scheme == "https"

    def with_query(self, **params: str) -> "HttpRequest":
        """Return a copy with extra query parameters merged in."""
        parsed = urlparse(self.url)
        merged = dict(parse_qsl(parsed.query))
        merged.update(params)
        rebuilt = parsed._replace(query=urlencode(merged)).geturl()
        return HttpRequest(
            method=self.method,
            url=rebuilt,
            headers=self.headers,
            cookies=self.cookies,
            body=self.body,
        )

    def to_payload(self) -> Dict[str, Any]:
        """Serialize into a packet payload mapping."""
        return {
            "kind": "http-request",
            "method": self.method,
            "url": self.url,
            "host": self.host,
            "path": self.path,
            "query": self.query,
            "headers": dict(self.headers),
            "cookies": dict(self.cookies),
            "body": dict(self.body),
        }


@dataclass(frozen=True)
class HttpResponse:
    """An HTTP response delivered back to the client."""

    status: int
    headers: Mapping[str, str] = field(default_factory=dict)
    set_cookies: Mapping[str, str] = field(default_factory=dict)
    body: Mapping[str, Any] = field(default_factory=dict)
    #: Follow-up URL for 3xx responses — how cookie-sync redirect chains run.
    redirect_url: Optional[str] = None

    def __post_init__(self) -> None:
        if not 100 <= self.status <= 599:
            raise ValueError(f"invalid HTTP status: {self.status}")
        if self.redirect_url is not None and not 300 <= self.status <= 399:
            raise ValueError("redirect_url requires a 3xx status")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def to_payload(self) -> Dict[str, Any]:
        return {
            "kind": "http-response",
            "status": self.status,
            "headers": dict(self.headers),
            "set_cookies": dict(self.set_cookies),
            "body": dict(self.body),
            "redirect_url": self.redirect_url,
        }


def estimate_size(payload: Mapping[str, Any]) -> int:
    """Rough wire size (bytes) of a parsed message, for flow statistics."""

    def measure(value: Any) -> int:
        if isinstance(value, Mapping):
            return sum(len(str(k)) + measure(v) + 4 for k, v in value.items())
        if isinstance(value, (list, tuple)):
            return sum(measure(v) + 2 for v in value)
        return len(str(value))

    return 64 + measure(payload)  # 64 ≈ framing overhead
