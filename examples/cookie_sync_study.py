#!/usr/bin/env python3
"""Cookie-sync propagation study (paper §5.5) standalone.

Crawls prebid sites with a logged-in persona profile, detects cookie-sync
traffic in the request log, and analyzes the resulting data-propagation
graph with networkx: who pushed identifiers to Amazon, how far partner
data travels downstream, and whether Amazon ever syncs outbound.
"""

import argparse

import networkx as nx

from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.report import render_kv, render_table
from repro.core.syncing import detect_cookie_syncing
from repro.util.rng import Seed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    config = ExperimentConfig(
        skills_per_persona=3,
        pre_iterations=1,
        post_iterations=3,
        crawl_sites=20,
        prebid_discovery_target=60,
        audio_hours=0.1,
    )
    print("running crawls ...")
    dataset = run_campaign(config, Seed(args.seed))
    analysis = detect_cookie_syncing(dataset)

    print()
    print(
        render_kv(
            {
                "sync events observed": len(analysis.events),
                "advertisers syncing with Amazon": analysis.partner_count,
                "Amazon outbound syncs": len(analysis.amazon_outbound_targets),
                "downstream third parties": analysis.downstream_count,
            },
            title="§5.5 cookie syncing",
        )
    )

    graph = analysis.sync_graph()
    print(
        f"\npropagation graph: {graph.number_of_nodes()} parties, "
        f"{graph.number_of_edges()} sync relationships"
    )
    print(f"amazon in-degree (partners feeding it): {graph.in_degree('amazon')}")
    print(f"amazon out-degree (should be 0): {graph.out_degree('amazon')}")

    reach = analysis.propagation_reach()
    top = sorted(reach.items(), key=lambda kv: -kv[1])[:10]
    print()
    print(
        render_table(
            ["partner", "parties reached"],
            top,
            title="widest-reaching partners (graph out-degree)",
        )
    )

    # How many hops does a user identifier travel from a partner?
    eccentric = max(
        nx.single_source_shortest_path_length(graph, top[0][0]).values()
    )
    print(f"\nmax propagation depth from {top[0][0]}: {eccentric} hop(s)")


if __name__ == "__main__":
    main()
