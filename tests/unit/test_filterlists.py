"""Tests for the Adblock-style filter-list engine."""

import pytest

from repro.orgmap.filterlists import FilterList, FilterRule, parse_rules


class TestParseRules:
    def test_domain_anchor(self):
        (rule,) = parse_rules(["||ads.example.com^"])
        assert rule.host == "ads.example.com"
        assert rule.match_subdomains
        assert not rule.is_exception

    def test_exception_rule(self):
        (rule,) = parse_rules(["@@||good.example.com^"])
        assert rule.is_exception

    def test_plain_host(self):
        (rule,) = parse_rules(["tracker.example.net"])
        assert rule.host == "tracker.example.net"
        assert not rule.match_subdomains

    def test_url_anchor(self):
        (rule,) = parse_rules(["|https://pixel.example.com/collect"])
        assert rule.host == "pixel.example.com"

    def test_comments_and_blanks_skipped(self):
        rules = parse_rules(["! comment", "", "# other", "[Adblock Plus 2.0]"])
        assert rules == []

    def test_garbage_skipped(self):
        assert parse_rules(["nodots", "^^^"]) == []

    def test_case_normalized(self):
        (rule,) = parse_rules(["||ADS.Example.COM^"])
        assert rule.host == "ads.example.com"


class TestFilterList:
    @pytest.fixture
    def fl(self):
        return FilterList.from_text(
            """
            ||megaphone.fm^
            ||podtrac.com^
            exact.tracker.io
            @@||pod.npr.org^
            ||npr.org^
            """
        )

    def test_blocks_domain(self, fl):
        assert fl.is_blocked("megaphone.fm")

    def test_blocks_subdomain(self, fl):
        assert fl.is_blocked("cdn.megaphone.fm")

    def test_does_not_block_suffix_lookalike(self, fl):
        assert not fl.is_blocked("notmegaphone.fm")

    def test_exact_rule_no_subdomains(self, fl):
        assert fl.is_blocked("exact.tracker.io")
        assert not fl.is_blocked("sub.exact.tracker.io")

    def test_exception_beats_block(self, fl):
        # npr.org is blocked but pod.npr.org is excepted.
        assert fl.is_blocked("www.npr.org")
        assert not fl.is_blocked("play.pod.npr.org")

    def test_unlisted_domain_not_blocked(self, fl):
        assert not fl.is_blocked("example.org")

    def test_classify_partitions(self, fl):
        ad, functional = fl.classify(
            ["cdn.megaphone.fm", "example.org", "dts.podtrac.com"]
        )
        assert ad == ["cdn.megaphone.fm", "dts.podtrac.com"]
        assert functional == ["example.org"]

    def test_from_hosts(self):
        fl = FilterList.from_hosts(["bad.example.com"])
        assert fl.is_blocked("sub.bad.example.com")

    def test_trailing_dot_normalized(self, fl):
        assert fl.is_blocked("cdn.megaphone.fm.")

    def test_len(self, fl):
        assert len(fl) == 5


class TestPaperFilterList:
    """The shipped Pi-hole list must classify the paper's domains correctly."""

    @pytest.fixture
    def fl(self):
        from repro.data.domains import PIHOLE_FILTER_TEXT

        return FilterList.from_text(PIHOLE_FILTER_TEXT)

    @pytest.mark.parametrize(
        "domain",
        [
            "device-metrics-us-2.amazon.com",
            "cdn.megaphone.fm",
            "play.podtrac.com",
            "chtbl.com",
            "traffic.libsyn.com",
            "live.streamtheworld.com",
            "turnernetworksales.mc.tritondigital.com",
            "traffic.omny.fm",
            "s.amazon-adsystem.com",
        ],
    )
    def test_ad_tracking_domains_blocked(self, fl, domain):
        assert fl.is_blocked(domain)

    @pytest.mark.parametrize(
        "domain",
        [
            "avs-alexa-16-na.amazon.com",  # voice pipeline is functional
            "play.pod.npr.org",  # NPR content excepted
            "dillilabs.com",
            "cdn2.voiceapps.com",
            "api.youversionapi.com",
            "static.garmincdn.com",
            "discovery.meethue.com",
        ],
    )
    def test_functional_domains_not_blocked(self, fl, domain):
        assert not fl.is_blocked(domain)
