"""Web measurement substrate: browsers, profiles, and the OpenWPM-style
crawler used for bid/ad collection and cookie-sync observation."""

from repro.web.browser import (
    Browser,
    BrowserProfile,
    CookieJar,
    LoggedRequest,
    WebUniverse,
)
from repro.web.openwpm import (
    AdRecord,
    BidRecord,
    CrawlResult,
    OpenWPMCrawler,
    discover_prebid_sites,
)

__all__ = [
    "AdRecord",
    "BidRecord",
    "Browser",
    "BrowserProfile",
    "CookieJar",
    "CrawlResult",
    "LoggedRequest",
    "OpenWPMCrawler",
    "WebUniverse",
    "discover_prebid_sites",
]
