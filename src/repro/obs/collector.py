"""The observability collector: one handle bundling tracer, metrics,
events, and manifest, plus the deterministic cross-shard merge.

Design rules
------------

* **World-free and picklable.**  A collector crosses the process
  boundary inside a :class:`~repro.core.parallel.ShardResult`; it must
  never hold service closures.  (A bound :class:`~repro.util.clock.SimClock`
  is a plain object and pickles fine.)
* **Null object, not ``if obs:``.**  Disabled observability is the
  :data:`NULL_OBS` singleton whose operations are no-ops, so
  instrumented code never branches — the <5 % overhead budget of
  ``bench_pipeline_throughput`` is met by making the disabled path a
  method call and the enabled path cheap.
* **Deterministic merge.**  :func:`merge_collectors` reassembles shard
  collectors into one whose *simulated-time span tree* is byte-identical
  to the serial run's for the same seed: structural spans (no
  ``persona`` attribute) must agree across shards and are kept once;
  persona spans are re-inserted in canonical roster order — the same
  order the serial runner visits them, because shards are contiguous
  roster slices.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.obs.events import EventLog
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = ["ObsCollector", "NullObs", "NULL_OBS", "merge_collectors"]


class ObsCollector:
    """Live observability state for one campaign (or one shard)."""

    enabled = True

    def __init__(self, clock=None) -> None:
        self.tracer = Tracer(clock)
        self.metrics = MetricsRegistry()
        self.events = EventLog(clock)
        self.manifest: Optional[RunManifest] = None

    def bind_clock(self, clock) -> None:
        """Attach the world clock all simulated timestamps read from."""
        self.tracer.bind_clock(clock)
        self.events.bind_clock(clock)

    # ------------------------------------------------------------------ #
    # Instrumentation surface (mirrored by NullObs)
    # ------------------------------------------------------------------ #

    def span(self, name: str, *, det: bool = False, **attrs: object):
        return self.tracer.span(name, det=det, **attrs)

    def inc(self, name: str, n: int = 1, merge: str = "sum") -> None:
        self.metrics.inc(name, n, merge)

    def gauge(self, name: str, value: float, merge: str = "max") -> None:
        self.metrics.set_gauge(name, value, merge)

    def event(self, event_type: str, **fields: object) -> None:
        self.events.emit(event_type, **fields)

    # ------------------------------------------------------------------ #
    # Exports
    # ------------------------------------------------------------------ #

    def trace_lines(self) -> List[str]:
        """The full trace as canonical JSONL lines: the manifest record,
        then every span (pre-order), then every event."""

        def line(kind: str, payload: Dict[str, object]) -> str:
            return json.dumps(
                {"kind": kind, **payload}, sort_keys=True, separators=(",", ":")
            )

        lines: List[str] = []
        if self.manifest is not None:
            lines.append(line("manifest", self.manifest.to_dict()))
        lines.extend(line("span", record) for record in self.tracer.records())
        lines.extend(line("event", record) for record in self.events.records())
        return lines

    def write_trace(self, path: Union[str, Path]) -> int:
        """Write the JSONL trace to ``path``; returns the line count."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        lines = self.trace_lines()
        target.write_text("\n".join(lines) + ("\n" if lines else ""))
        return len(lines)

    def metrics_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = dict(self.metrics.as_dict())
        if self.manifest is not None:
            payload["manifest"] = self.manifest.to_dict()
        return payload

    def write_metrics(self, path: Union[str, Path]) -> None:
        """Write counters/gauges (+ manifest) as pretty JSON to ``path``."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.metrics_payload(), sort_keys=True, indent=2) + "\n"
        )

    def summary(self) -> Dict[str, object]:
        """The ``report obs-summary`` payload: per-phase real/simulated
        cost, counters, gauges, and the manifest."""
        phases: Dict[str, Dict[str, object]] = {}

        def walk(span: Span) -> None:
            if span.name.startswith("phase:"):
                key = span.name[len("phase:") :]
                entry = phases.setdefault(
                    key, {"real_s": 0.0, "sim_s": 0.0, "spans": 0}
                )
                entry["spans"] += 1
                if span.real_elapsed is not None:
                    entry["real_s"] += span.real_elapsed
                if span.sim_elapsed is not None:
                    entry["sim_s"] += span.sim_elapsed
            for child in span.children:
                walk(child)

        for root in self.tracer.roots:
            walk(root)
        metrics = self.metrics.as_dict()
        return {
            "phases": phases,
            "counters": metrics["counters"],
            "gauges": metrics["gauges"],
            "events": len(self.events),
            "manifest": None if self.manifest is None else self.manifest.to_dict(),
        }


class _NullSpanContext:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpanContext()


class NullObs:
    """Disabled observability: every operation is a cheap no-op."""

    enabled = False

    def bind_clock(self, clock) -> None:
        pass

    def span(self, name: str, *, det: bool = False, **attrs: object):
        return _NULL_SPAN

    def inc(self, name: str, n: int = 1, merge: str = "sum") -> None:
        pass

    def gauge(self, name: str, value: float, merge: str = "max") -> None:
        pass

    def event(self, event_type: str, **fields: object) -> None:
        pass


#: The shared disabled collector.  Stateless, so one instance serves all.
NULL_OBS = NullObs()


# ---------------------------------------------------------------------- #
# Cross-shard merge
# ---------------------------------------------------------------------- #


def _span_key(span: Span):
    return (span.name, json.dumps(span.attrs, sort_keys=True))


def _merge_span_lists(
    shard_children: Sequence[List[Span]], roster_index: Dict[str, int]
) -> List[Span]:
    """Merge matching child lists from each shard.

    Structural children (no ``persona`` attribute) must form the same
    sequence in every shard; they are recursed into.  Persona children
    are concatenated and ordered by canonical roster position — each
    belongs to exactly one shard.
    """
    structural = [
        [c for c in children if "persona" not in c.attrs]
        for children in shard_children
    ]
    skeleton = structural[0]
    for index, other in enumerate(structural[1:], start=1):
        if [_span_key(s) for s in other] != [_span_key(s) for s in skeleton]:
            raise RuntimeError(
                "shards disagree on the structural span skeleton "
                f"(shard 0 vs shard {index}): "
                f"{[s.name for s in skeleton]} vs {[s.name for s in other]}"
            )

    merged_structural: List[Span] = []
    for position, template in enumerate(skeleton):
        peers = [columns[position] for columns in structural]
        node = Span(
            name=template.name,
            attrs=dict(template.attrs),
            det=template.det,
            status=(
                "error"
                if any(p.status == "error" for p in peers)
                else template.status
            ),
        )
        if template.det:
            sim_values = {p.sim_us for p in peers}
            if len(sim_values) > 1:
                raise RuntimeError(
                    f"deterministic span {template.name!r} disagrees across "
                    f"shards: sim_us {sorted(sim_values)}"
                )
            node.sim_start = template.sim_start
            node.sim_end = template.sim_end
        node.children = _merge_span_lists(
            [p.children for p in peers], roster_index
        )
        merged_structural.append(node)

    personas: List[Span] = [
        c for children in shard_children for c in children if "persona" in c.attrs
    ]
    personas.sort(
        key=lambda c: roster_index.get(str(c.attrs["persona"]), len(roster_index))
    )

    if merged_structural and personas:
        raise RuntimeError(
            "span level mixes structural and persona children — the merge "
            "cannot order them against the serial run"
        )
    return merged_structural or personas


def merge_collectors(
    collectors: Sequence[ObsCollector],
    roster: Sequence[str],
    manifest: Optional[RunManifest] = None,
) -> ObsCollector:
    """Deterministically merge per-shard collectors (in shard order).

    The merged simulated-time span tree is byte-identical to the serial
    run's for the same seed, provided shard persona subsets are
    contiguous slices of ``roster`` — the contract of
    :func:`repro.core.parallel.shard_personas`.
    """
    if not collectors:
        raise ValueError("no collectors to merge")
    roster_index = {name: i for i, name in enumerate(roster)}
    merged = ObsCollector()
    merged.tracer.roots = _merge_span_lists(
        [c.tracer.roots for c in collectors], roster_index
    )
    merged.metrics = MetricsRegistry.merge([c.metrics for c in collectors])
    merged.events = EventLog.merge([c.events for c in collectors])
    merged.manifest = manifest
    return merged
