"""Table 6: mean bids without vs with interaction in adjacent holiday
windows (the holiday-season control)."""

from paper_targets import TABLE6

from repro.core.bids import holiday_window_means
from repro.core.report import render_table
from repro.data import categories as cat


def bench_table6_holiday(benchmark, dataset):
    means = benchmark(holiday_window_means, dataset)

    rows = []
    for persona in list(cat.ALL_CATEGORIES) + [cat.VANILLA]:
        pre, post = means[persona]
        paper_pre, paper_post = TABLE6[persona]
        rows.append(
            (persona, f"{pre:.3f}", f"{paper_pre:.3f}", f"{post:.3f}", f"{paper_post:.3f}")
        )
    print()
    print(
        render_table(
            ["persona", "no-interaction", "paper", "interaction", "paper"],
            rows,
            title="Table 6",
        )
    )

    # Shape: pre-interaction (peak holiday) bids are inflated for every
    # persona including vanilla — no treatment effect is visible before
    # interaction; with interaction the interest personas beat vanilla.
    pre_values = [means[p][0] for p in cat.ALL_CATEGORIES]
    vanilla_pre, vanilla_post = means[cat.VANILLA]
    assert min(pre_values) > 0.25  # all holiday-inflated
    assert vanilla_pre > 1.5 * vanilla_post  # holiday decays into January
    higher_post = sum(
        1 for p in cat.ALL_CATEGORIES if means[p][1] > vanilla_post
    )
    assert higher_post >= 8
    # No discernible pre-interaction treatment: vanilla sits inside the
    # interest personas' pre range.
    assert min(pre_values) * 0.8 <= vanilla_pre <= max(pre_values) * 1.2
