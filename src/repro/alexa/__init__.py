"""Simulated Amazon Echo ecosystem: devices, cloud, marketplace, DSAR.

The *world side* of the reproduction — what the paper audits.  The Echo
device emits only TLS-opaque traffic; the instrumented AVS Echo exposes a
pre-encryption plaintext log; the cloud mediates every skill interaction
and feeds the interest profiler behind Amazon's ad targeting.
"""

from repro.alexa.account import AmazonAccount
from repro.alexa.certification import (
    CertificationChecker,
    CertificationResult,
    PolicyViolation,
    audit_certified_skills,
)
from repro.alexa.cloud import VOICE_ENDPOINT, AccountState, AlexaCloud, InteractionRecord
from repro.alexa.device import AVSEcho, EchoDevice, PlaintextRecord
from repro.alexa.dsar import AdvertisingInterestsFile, DataExport, DataRequestPortal
from repro.alexa.marketplace import InstallReceipt, Marketplace, SkillListing
from repro.alexa.profiler import InterestProfile, InterestProfiler
from repro.alexa.skill_backend import Directive, SkillBackend, SkillResult
from repro.alexa.voice import WAKE_WORDS, Transcription, VoiceFrontend
from repro.alexa.voice_traits import SpeakerProfile, TraitInference, traits_exposed

__all__ = [
    "AVSEcho",
    "CertificationChecker",
    "CertificationResult",
    "PolicyViolation",
    "audit_certified_skills",
    "AccountState",
    "AdvertisingInterestsFile",
    "AlexaCloud",
    "AmazonAccount",
    "DataExport",
    "DataRequestPortal",
    "Directive",
    "EchoDevice",
    "InstallReceipt",
    "InteractionRecord",
    "InterestProfile",
    "InterestProfiler",
    "Marketplace",
    "PlaintextRecord",
    "SkillBackend",
    "SkillListing",
    "SkillResult",
    "SpeakerProfile",
    "TraitInference",
    "Transcription",
    "traits_exposed",
    "VOICE_ENDPOINT",
    "VoiceFrontend",
    "WAKE_WORDS",
]
