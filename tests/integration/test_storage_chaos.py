"""Storage chaos integration: the determinism bar and clean degrade.

The contract under test: for any storage fault profile where writes
eventually succeed, a campaign's exports are **byte-identical** to a
no-fault run — serial and parallel — because every transient fault is
retried behind the atomic-publish seam and every corrupt read lands on
a self-healing path.  When writes stop succeeding (``ENOSPC``), the
campaign degrades to an honest ``partial`` instead of wedging, and a
rerun with space back resumes to the identical bytes.
"""

import hashlib
import json
import urllib.request

import pytest

from repro.core.campaign import run_campaign, run_segment_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.export import EXPORT_FILES, export_dataset, export_segment_store
from repro.core.iosim import (
    StorageFaultPlan,
    StorageFaultProfile,
    storage_faults,
)
from repro.core.segments import SegmentStore
from repro.util.rng import Seed

SEED_ROOT = 42

CONFIG = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)


def _digests(out_dir):
    return {
        name: hashlib.sha256((out_dir / name).read_bytes()).hexdigest()
        for name in EXPORT_FILES
    }


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """No-fault serial exports: the byte oracle."""
    out = tmp_path_factory.mktemp("no-fault")
    dataset = run_campaign(CONFIG, Seed(SEED_ROOT), obs=False)
    export_dataset(dataset, out)
    return _digests(out)


class TestByteIdenticalUnderFaults:
    @pytest.mark.parametrize("profile", ["mild", "harsh"])
    def test_serial_segment_campaign(self, reference, tmp_path, profile):
        with storage_faults(profile, seed=SEED_ROOT) as plan:
            store = run_segment_campaign(
                CONFIG, Seed(SEED_ROOT), store_dir=tmp_path / "s"
            )
            export_segment_store(store, tmp_path / "out")
        assert _digests(tmp_path / "out") == reference
        assert store.status() == "complete"
        # The run was genuinely faulted — and said so in the manifest.
        manifest = store.read_manifest()
        assert manifest["storage"]["profile"] == profile
        assert sum(manifest["storage"]["counters"].values()) > 0

    @pytest.mark.parametrize("profile", ["mild", "harsh"])
    def test_parallel_thread_segment_campaign(self, reference, tmp_path, profile):
        with storage_faults(profile, seed=SEED_ROOT):
            store = run_segment_campaign(
                CONFIG,
                Seed(SEED_ROOT),
                store_dir=tmp_path / "s",
                parallel=True,
                workers=4,
                backend="thread",
            )
            export_segment_store(store, tmp_path / "out")
        assert _digests(tmp_path / "out") == reference
        assert store.status() == "complete"

    def test_memory_campaign_counters_reach_obs(self, reference, tmp_path):
        # A cached memory campaign touches the seam exactly once (the
        # dataset pickle), so rate-based profiles may draw healthy;
        # slow_rate=1.0 guarantees an injection without risking bytes.
        profile = StorageFaultProfile(
            name="always-slow", slow_rate=1.0, slow_seconds=(0.0, 0.0005)
        )
        plan = StorageFaultPlan(Seed(SEED_ROOT), profile)
        with storage_faults(plan):
            dataset = run_campaign(
                CONFIG, Seed(SEED_ROOT), cache=tmp_path / "cache"
            )
            export_dataset(dataset, tmp_path / "out")
        assert _digests(tmp_path / "out") == reference
        counters = dataset.obs.summary()["counters"]
        assert counters["storage.faults.injected.slow"] >= 1


class TestEnospcDegrade:
    def test_exhausted_disk_degrades_to_partial_then_resumes(self, tmp_path):
        plan = StorageFaultPlan.from_profile("none", SEED_ROOT).exhaust(
            "segments", "segment", after=4
        )
        with storage_faults(plan):
            store = run_segment_campaign(
                CONFIG, Seed(SEED_ROOT), store_dir=tmp_path / "s"
            )
        assert store.status() == "partial"
        manifest = store.read_manifest()
        missing = manifest["missing_personas"]
        assert missing  # the uncovered tail is accounted, not lost
        assert plan.snapshot()["storage.enospc"] >= 1
        covered = store.covered_positions()
        assert len(covered) + len(missing) == len(manifest["roster"])

        # Space comes back: the rerun covers only the missing tail and
        # the exports equal a never-faulted store's, byte for byte.
        resumed = run_segment_campaign(
            CONFIG, Seed(SEED_ROOT), store_dir=tmp_path / "s"
        )
        assert resumed.status() == "complete"
        export_segment_store(resumed, tmp_path / "out")
        fresh = run_segment_campaign(
            CONFIG, Seed(SEED_ROOT), store_dir=tmp_path / "fresh"
        )
        export_segment_store(fresh, tmp_path / "fresh-out")
        assert _digests(tmp_path / "out") == _digests(tmp_path / "fresh-out")


class TestColdFallbackRegression:
    """Mid-file truncation of acceleration artifacts must never crash a
    reader — the cold path (full re-verify, index rebuild) absorbs it."""

    def test_truncated_digest_cache_and_index_fall_back_cold(self, tmp_path):
        store = run_segment_campaign(
            CONFIG, Seed(SEED_ROOT), store_dir=tmp_path / "s"
        )
        export_segment_store(store, tmp_path / "out")
        baseline = _digests(tmp_path / "out")

        cache_path = store.digest_cache_path
        if cache_path.exists():
            cache_path.write_bytes(cache_path.read_bytes()[: 20])
        for index in store.batches_dir.glob("index-*.json"):
            index.write_bytes(index.read_bytes()[: 25])

        reopened = SegmentStore(
            tmp_path / "s",
            store.seed_root,
            store.config_fingerprint,
            store.roster,
        )
        assert reopened.status() == "complete"
        export_segment_store(reopened, tmp_path / "out2")
        assert _digests(tmp_path / "out2") == baseline


class TestServiceTornTailRestart:
    def test_sse_replay_after_torn_tail_terminates_with_end_frame(
        self, tmp_path
    ):
        from repro.core.campaign import CampaignSpec
        from repro.service import AuditService

        spec = CampaignSpec(config=CONFIG, seed=31)
        with AuditService(tmp_path, port=0, total_workers=2) as service:
            job = service.scheduler.submit(spec)
            assert service.scheduler.wait_idle(timeout=120)
            events_path = job.events_path
        # Crash mid-append: a torn fragment at the tail of the log.
        with events_path.open("ab") as handle:
            handle.write(b'{"schema": 1, "seq": 99, "type": "job.pro')

        # Restarted service: replay skips the torn tail, seq continues,
        # and the SSE stream still closes with its end frame.
        with AuditService(tmp_path, port=0, total_workers=2) as restarted:
            with urllib.request.urlopen(
                f"{restarted.url}/campaigns/{job.id}/events?follow=1",
                timeout=30,
            ) as response:
                body = response.read().decode("utf-8")
        frames = [f for f in body.split("\n\n") if f.strip()]
        assert frames[-1].startswith("event: end")
        data_frames = [f for f in frames if f.startswith("data: ")]
        records = [json.loads(f[len("data: "):]) for f in data_frames]
        assert [r["seq"] for r in records] == list(range(len(records)))
        assert "job.pro" not in body
