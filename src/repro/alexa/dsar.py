"""The "Request My Data" (DSAR) portal.

The paper requests each persona's data from Amazon three times — after
skill installation and twice after interaction (§6.1) — and finds that
the advertising-interest file is simply *absent* from the second
post-interaction export for five personas, even on re-request.  The
portal reproduces that quirk, because the paper's conclusion ("Amazon
cannot be reliably trusted to provide transparency") depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.alexa.cloud import AlexaCloud
from repro.alexa.profiler import InterestProfiler
from repro.data.calibration import MISSING_INTEREST_FILE_PERSONAS
from repro.obs import NULL_OBS

__all__ = ["DataRequestPortal", "DataExport", "AdvertisingInterestsFile"]


@dataclass(frozen=True)
class AdvertisingInterestsFile:
    """Advertising.AdvertisingInterests.csv in the real export."""

    interests: Tuple[str, ...]


@dataclass(frozen=True)
class DataExport:
    """One DSAR export bundle."""

    customer_id: str
    request_index: int
    #: File-name → row count for the always-present files.
    files: Dict[str, int]
    #: Voice interaction transcripts (Alexa file).
    transcripts: Tuple[str, ...]
    #: None when Amazon omitted the advertising-interests file.
    advertising_interests: Optional[AdvertisingInterestsFile]


@dataclass
class _RequestLog:
    total: int = 0
    post_interaction: int = 0


class DataRequestPortal:
    """Amazon's privacy-central data request endpoint."""

    def __init__(self, cloud: AlexaCloud) -> None:
        self._cloud = cloud
        self._profiler = InterestProfiler(cloud.catalog)
        self._logs: Dict[str, _RequestLog] = {}
        #: Observability sink; the experiment runner swaps in its
        #: collector so export counters land in the campaign trace.
        self.obs = NULL_OBS

    def request_data(self, customer_id: str) -> DataExport:
        """Issue one data request and return the export bundle."""
        state = self._cloud.account_state(customer_id)
        log = self._logs.setdefault(customer_id, _RequestLog())
        log.total += 1
        if state.interaction_epoch >= 1:
            log.post_interaction += 1

        profile = self._profiler.profile(state)
        interests: Optional[AdvertisingInterestsFile] = AdvertisingInterestsFile(
            interests=profile.interests
        )
        if self._interest_file_missing(state.account.persona, log):
            interests = None

        self.obs.inc("dsar.requests")
        if interests is None:
            self.obs.inc("dsar.interest_files_missing")
            self.obs.event(
                "dsar.interest_file_missing",
                persona=state.account.persona,
                request_index=log.total,
            )

        transcripts = tuple(r.transcript for r in state.interactions)
        files = {
            "Devices.DeviceDiagnostics.csv": 40 + 3 * len(state.ever_installed),
            "Search-Data.Retail.SearchHistory.csv": 12,
            "Retail.OrderHistory.csv": 1,
            "Alexa.SkillsActivity.csv": len(state.interactions),
        }
        return DataExport(
            customer_id=customer_id,
            request_index=log.total,
            files=files,
            transcripts=transcripts,
            advertising_interests=interests,
        )

    @staticmethod
    def _interest_file_missing(persona: str, log: _RequestLog) -> bool:
        """The §6.1 quirk: the advertising file vanishes from the second
        post-interaction export for some personas and never comes back."""
        return persona in MISSING_INTEREST_FILE_PERSONAS and log.post_interaction >= 2
