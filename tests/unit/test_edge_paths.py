"""Edge-path tests: unregistered users, dead pages, routing ties, and
other corners the happy-path suites skip."""

import pytest

from repro.adtech.exchange import AdTechWorld
from repro.adtech.prebid import PrebidSession, register_publisher
from repro.data.websites import WebsiteSpec
from repro.netsim.http import HttpRequest, HttpResponse
from repro.util.clock import SimClock
from repro.util.rng import Seed
from repro.web.browser import Browser, BrowserProfile, WebUniverse


@pytest.fixture
def web():
    universe = WebUniverse()
    adtech = AdTechWorld(Seed(71), universe)
    clock = SimClock()
    return universe, adtech, clock


class TestExchangeEdges:
    def test_unregistered_uid_gets_nobid(self, web):
        universe, adtech, clock = web
        stranger = BrowserProfile("stranger", "x")  # never registered
        browser = Browser(stranger, universe, clock)
        bidder = adtech.bidders[0]
        reply = browser.get(
            f"https://{bidder.domain}/bid?slot=s&page=p&iteration=0"
            f"&when=2022-01-10T00:00:00+00:00"
        )
        assert reply.status == 204
        assert reply.body.get("nobid")

    def test_sync_endpoint_tolerates_missing_params(self, web):
        universe, adtech, clock = web
        profile = BrowserProfile("p", "x")
        adtech.register_profile(profile)
        browser = Browser(profile, universe, clock)
        before = adtech.match_count
        browser.get("https://s.amazon-adsystem.com/x/cm")  # no bidder/uid
        assert adtech.match_count == before

    def test_bid_path_only(self, web):
        universe, adtech, clock = web
        profile = BrowserProfile("p2", "x")
        adtech.register_profile(profile)
        browser = Browser(profile, universe, clock)
        bidder = adtech.bidders[0]
        reply = browser.get(f"https://{bidder.domain}/cm-confirm?status=ok")
        assert reply.ok  # pixel path, not a bid

    def test_slot_bidders_unique(self, web):
        _, adtech, _ = web
        bidders = adtech.bidders_for_slot("any-slot")
        codes = [b.code for b in bidders]
        assert len(codes) == len(set(codes))


class TestPrebidEdges:
    def test_dead_page_yields_no_bids(self, web):
        universe, adtech, clock = web
        profile = BrowserProfile("p3", "x")
        adtech.register_profile(profile)
        browser = Browser(profile, universe, clock)
        ghost = WebsiteSpec(
            domain="ghost.example.com",
            rank=1,
            supports_prebid=True,
            prebid_version="6.18.0",
            ad_slots=2,
        )
        # Never registered in the universe: page load 404s.
        session = PrebidSession(ghost, browser, adtech, iteration=0)
        assert session.version() is None
        assert session.request_bids() == {}

    def test_zero_slot_page(self, web):
        universe, adtech, clock = web
        profile = BrowserProfile("p4", "x")
        adtech.register_profile(profile)
        browser = Browser(profile, universe, clock)
        site = WebsiteSpec(
            domain="noslots.example.com",
            rank=2,
            supports_prebid=True,
            prebid_version="6.18.0",
            ad_slots=0,
        )
        register_publisher(site, universe)
        session = PrebidSession(site, browser, adtech, iteration=0)
        assert session.request_bids() == {}
        assert session.render_winners(0, True) == []


class TestCloudEdges:
    def test_non_recognize_event_acknowledged(self, small_dataset):
        world = small_dataset.world
        world.router.attach_device("edge-dev")
        response = world.router.send(
            "edge-dev",
            HttpRequest(
                "POST",
                "https://avs-alexa-16-na.amazon.com/v1/events",
                body={"event": "heartbeat"},
            ),
        )
        assert response.ok

    def test_longest_invocation_match_wins(self, small_dataset):
        """'open custom test skill extended' must route to the longer
        invocation name when two installed skills share a prefix."""
        from repro.alexa import AlexaCloud, AmazonAccount, EchoDevice, Marketplace
        from repro.data import categories as cat
        from repro.data.domains import build_endpoint_registry
        from repro.data.skill_catalog import SkillCatalog, SkillSpec
        from repro.netsim.router import Router

        short = SkillSpec(
            skill_id="skill-news",
            name="News",
            category=cat.HEALTH,
            vendor="V",
            review_count=1,
            invocation_name="news",
            sample_utterances=("open news",),
            amazon_endpoints=("avs-alexa-16-na.amazon.com",),
        )
        long = SkillSpec(
            skill_id="skill-news-daily",
            name="News Daily",
            category=cat.HEALTH,
            vendor="V",
            review_count=1,
            invocation_name="news daily",
            sample_utterances=("open news daily",),
            amazon_endpoints=("avs-alexa-16-na.amazon.com",),
        )
        seed = Seed(72)
        router = Router(build_endpoint_registry(), SimClock())
        from repro.core.world import build_world

        world = build_world(seed, catalog=SkillCatalog([short, long]))
        account = AmazonAccount(email="t@example.com", persona="t")
        device = EchoDevice("edge-route", account, world.router, world.cloud, seed)
        world.marketplace.install(account, short.skill_id)
        world.marketplace.install(account, long.skill_id)
        reply = device.say("alexa, open news daily")
        assert reply is not None and "News Daily" in reply


class TestExperimentEdges:
    def test_advance_to_day_rejects_backwards_targets(self, small_dataset):
        clock = small_dataset.world.clock
        now = clock.now
        # A target behind the clock is a scheduling bug: silently
        # no-opping would collapse distinct crawl days onto one date and
        # skew the Table-6 seasonality unnoticed, so it raises.
        from repro.core.experiment import ExperimentRunner

        runner = ExperimentRunner.__new__(ExperimentRunner)
        runner.world = small_dataset.world
        with pytest.raises(ValueError, match="advance backwards"):
            runner._advance_to_day(0)
        assert clock.now == now

    def test_advance_to_day_same_target_is_noop(self):
        from types import SimpleNamespace

        from repro.core.experiment import ExperimentRunner
        from repro.util.clock import SimClock

        runner = ExperimentRunner.__new__(ExperimentRunner)
        clock = SimClock()
        runner.world = SimpleNamespace(clock=clock)
        runner._advance_to_day(3)
        now = clock.now
        runner._advance_to_day(3)  # identical target: no-op, no raise
        assert clock.now == now
