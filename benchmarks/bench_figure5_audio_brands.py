"""Figure 5: distribution of audio-ad brands across Amazon Music,
Spotify, and Pandora (brands streamed twice or more)."""

from repro.core.adcontent import analyze_audio_ads
from repro.core.report import render_table
from repro.data import categories as cat


def bench_figure5_audio_brands(benchmark, dataset):
    analysis = benchmark(analyze_audio_ads, dataset)

    rows = []
    for (skill, persona), brands in sorted(analysis.brand_distributions.items()):
        for brand, count in sorted(brands.items(), key=lambda kv: -kv[1]):
            rows.append((skill, persona, brand, count))
    print()
    print(render_table(["skill", "persona", "brand", "plays"], rows, title="Figure 5"))

    def brands(skill, persona):
        return {
            b.lower() for b in analysis.brand_distributions.get((skill, persona), {})
        }

    # Fashion & Style exclusives (paper: Ashley and Ross on Spotify,
    # Swiffer Wet Jet on Pandora).
    fashion_spotify = analysis.exclusive_brands("Spotify", cat.FASHION)
    assert {"ashley", "ross"} <= {b.lower() for b in fashion_spotify}
    fashion_pandora = analysis.exclusive_brands("Pandora", cat.FASHION)
    assert "swiffer wet jet" in {b.lower() for b in fashion_pandora}

    # Connected Car's sole Pandora exclusive: Febreeze car.
    cc_pandora = {b.lower() for b in analysis.exclusive_brands("Pandora", cat.CONNECTED_CAR)}
    assert "febreeze car" in cc_pandora

    # Clothing brands appear much more often for Fashion & Style.
    # (Extraction lowercases brands, so compare on lowercase keys.)
    def plays(skill, persona, brand):
        dist = analysis.brand_distributions.get((skill, persona), {})
        return sum(c for b, c in dist.items() if b.lower() == brand)

    for brand in ("burlington", "kohl's"):
        fashion_count = plays("Pandora", cat.FASHION, brand)
        others = plays("Pandora", cat.CONNECTED_CAR, brand) + plays(
            "Pandora", cat.VANILLA, brand
        )
        assert fashion_count > others, brand
