"""§7.1 policy availability statistics: 214/450 links, 188 downloadable,
129 generic, 10 linking Amazon's policy."""

from paper_targets import (
    POLICIES_DOWNLOADED,
    POLICIES_GENERIC,
    POLICIES_LINK_AMAZON,
    POLICY_LINKS,
)

from repro.core.compliance import policy_availability
from repro.core.report import render_kv


def bench_policy_stats(benchmark, dataset):
    stats = benchmark(policy_availability, dataset)
    print()
    print(
        render_kv(
            {
                "skills": f"{stats.total_skills} (paper 450)",
                "policy links": f"{stats.with_link} (paper {POLICY_LINKS})",
                "downloadable": f"{stats.downloadable} (paper {POLICIES_DOWNLOADED})",
                "mention Amazon/Alexa": f"{stats.mention_amazon} (paper 59)",
                "generic (no mention)": f"{stats.generic} (paper {POLICIES_GENERIC})",
                "link Amazon's policy": f"{stats.link_amazon_policy} (paper {POLICIES_LINK_AMAZON})",
            },
            title="§7.1 policy availability",
        )
    )

    assert stats.total_skills == 450
    assert stats.with_link == POLICY_LINKS
    assert stats.downloadable == POLICIES_DOWNLOADED
    assert stats.generic == POLICIES_GENERIC
    assert stats.link_amazon_policy == POLICIES_LINK_AMAZON
    assert stats.mention_amazon == 59
