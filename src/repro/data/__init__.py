"""Seeded world data: domains, skills, websites, and calibration tables.

Everything the simulated ecosystem is built from.  The auditing framework
(:mod:`repro.core`) must never import ground truth from here — it works
only from observable artifacts.  Benchmarks import from here only to
*compare* measured results against the generative targets.
"""

from repro.data import calibration, categories, datatypes, domains, skill_catalog, websites

__all__ = [
    "calibration",
    "categories",
    "datatypes",
    "domains",
    "skill_catalog",
    "websites",
]
