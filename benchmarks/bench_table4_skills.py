"""Table 4: top-5 skills contacting third-party advertising & tracking
services."""

from repro.core.report import render_table
from repro.core.traffic import analyze_traffic


def bench_table4_skills(benchmark, dataset, world, vendor_by_skill):
    analysis = benchmark.pedantic(
        analyze_traffic,
        args=(dataset, world.org_resolver(), world.filter_list, vendor_by_skill),
        rounds=2,
        iterations=1,
    )
    top = analysis.top_ad_tracking_skills(5)
    rows = [
        (world.catalog.by_id(skill_id).name, len(domains), ", ".join(sorted(domains)))
        for skill_id, domains in top
    ]
    print()
    print(render_table(["skill", "#A&T", "A&T domains"], rows, title="Table 4"))

    names = [world.catalog.by_id(sid).name for sid, _ in top]
    # Paper shape: Garmin leads with 4 A&T services; the fashion/dating
    # podcast skills follow.
    assert names[0] == "Garmin"
    assert len(top[0][1]) == 4
    assert all(2 <= len(domains) <= 4 for _, domains in top)
    paper_top = {
        "Garmin",
        "Makeup of the Day",
        "Men's Finest Daily Fashion Tip",
        "Dating and Relationship Tips and advices",
        "Charles Stanley Radio",
        "Gwynnie Bee",
        "Love Trouble",
        "Genesis",
    }
    assert set(names) <= paper_top
