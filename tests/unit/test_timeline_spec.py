"""Unit tests for TimelineSpec (repro.core.timeline): the serializable
longitudinal-audit description, its seeded generator, and the
per-persona input fingerprints the incremental recompute relies on."""

import dataclasses
import json
import subprocess
import sys

import pytest

from repro.core.campaign import CampaignSpec
from repro.core.experiment import ExperimentConfig
from repro.core.personas import scaled_roster
from repro.core.timeline import (
    TIMELINE_SCHEMA_VERSION,
    EpochSpec,
    TimelineSpec,
    dirty_positions,
    persona_fingerprint,
)

TINY = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)

BASE = CampaignSpec(config=TINY, seed=7, store="segments")

DRIFTED = EpochSpec(interest_drift=("dating:2",))
CHURNED = EpochSpec(catalog_churn=("smart-home:abc123",))


def two_epochs(**second):
    return TimelineSpec(base=BASE, epochs=(EpochSpec(), EpochSpec(**second)))


class TestRoundTrip:
    def test_json_round_trip_is_exact(self):
        spec = two_epochs(
            offset_days=14,
            bidders_entered=2,
            bidders_exited=1,
            catalog_churn=("smart-home:s1", "dating:s2"),
            interest_drift=("dating:3",),
            filterlist_add=("new.tracker.example",),
            filterlist_remove=("doubleclick.net",),
        )
        assert TimelineSpec.from_json(spec.to_json()) == spec

    def test_round_trip_defaults(self):
        spec = TimelineSpec(base=BASE)
        assert TimelineSpec.from_json(spec.to_json()) == spec

    def test_dict_round_trip(self):
        spec = two_epochs(interest_drift=("dating:1",))
        assert TimelineSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_carries_schema_version(self):
        assert TimelineSpec(base=BASE).to_dict()["schema"] == TIMELINE_SCHEMA_VERSION

    def test_epochs_restore_as_epoch_specs(self):
        restored = TimelineSpec.from_json(two_epochs(offset_days=3).to_json())
        assert all(isinstance(e, EpochSpec) for e in restored.epochs)
        assert restored.epochs[1].offset_days == 3

    def test_base_restores_as_campaign_spec(self):
        restored = TimelineSpec.from_json(TimelineSpec(base=BASE).to_json())
        assert isinstance(restored.base, CampaignSpec)
        assert restored.base == BASE

    def test_epoch_list_fields_serialize_as_lists(self):
        payload = DRIFTED.to_dict()
        assert payload["interest_drift"] == ["dating:2"]
        json.dumps(payload)  # JSON-safe without a custom encoder


class TestFingerprint:
    def test_stable_across_round_trip(self):
        spec = two_epochs(interest_drift=("dating:2",))
        assert TimelineSpec.from_json(spec.to_json()).fingerprint() == spec.fingerprint()

    def test_mutations_shift_fingerprint(self):
        assert two_epochs().fingerprint() != two_epochs(offset_days=7).fingerprint()
        assert (
            two_epochs(interest_drift=("dating:1",)).fingerprint()
            != two_epochs(interest_drift=("dating:2",)).fingerprint()
        )

    def test_fingerprint_stable_across_processes(self):
        spec = two_epochs(catalog_churn=("smart-home:s1",))
        code = (
            "import sys\n"
            "from repro.core.timeline import TimelineSpec\n"
            "print(TimelineSpec.from_json(sys.stdin.read()).fingerprint())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            input=spec.to_json(),
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == spec.fingerprint()


class TestValidation:
    def test_memory_store_rejected(self):
        with pytest.raises(ValueError, match="store='segments'"):
            TimelineSpec(base=CampaignSpec(config=TINY, store="memory"))

    def test_base_config_must_leave_mutations_at_defaults(self):
        mutated = dataclasses.replace(TINY, interest_drift=("dating:1",))
        with pytest.raises(ValueError, match="interest_drift"):
            TimelineSpec(base=CampaignSpec(config=mutated, store="segments"))

    def test_empty_epochs_rejected(self):
        with pytest.raises(ValueError, match="at least one epoch"):
            TimelineSpec(base=BASE, epochs=())

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TimelineSpec(
                base=BASE,
                epochs=(EpochSpec(offset_days=5), EpochSpec(offset_days=2)),
            )

    def test_invalid_drift_token_rejected_at_construction(self):
        # ExperimentConfig token validation runs for every epoch up front.
        with pytest.raises(ValueError, match="interest_drift token"):
            two_epochs(interest_drift=("dating",))

    def test_invalid_churn_category_rejected(self):
        with pytest.raises(ValueError, match="catalog_churn token"):
            two_epochs(catalog_churn=("not-a-category:s1",))

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="offset_days"):
            EpochSpec(offset_days=-1)

    def test_bool_offset_rejected(self):
        with pytest.raises(TypeError, match="offset_days"):
            EpochSpec(offset_days=True)

    def test_bad_filterlist_host_rejected(self):
        with pytest.raises(ValueError, match="bare hostnames"):
            EpochSpec(filterlist_add=("no dots here",))

    def test_unknown_epoch_field_rejected(self):
        with pytest.raises(ValueError, match="unknown epoch spec fields"):
            EpochSpec.from_dict({"offset_days": 1, "surprise": 2})

    def test_unknown_timeline_field_rejected(self):
        payload = TimelineSpec(base=BASE).to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="unknown timeline spec fields"):
            TimelineSpec.from_dict(payload)

    def test_foreign_schema_rejected(self):
        payload = TimelineSpec(base=BASE).to_dict()
        payload["schema"] = TIMELINE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            TimelineSpec.from_dict(payload)

    def test_missing_base_rejected(self):
        with pytest.raises(ValueError, match="missing its base"):
            TimelineSpec.from_dict({"schema": TIMELINE_SCHEMA_VERSION, "epochs": []})

    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            TimelineSpec.from_json("{nope")

    def test_replace_revalidates(self):
        spec = TimelineSpec(base=BASE)
        with pytest.raises(ValueError, match="at least one epoch"):
            spec.replace(epochs=())


class TestEffectiveState:
    def test_effective_config_injects_epoch_fields(self):
        spec = two_epochs(
            offset_days=14, bidders_entered=1, interest_drift=("dating:2",)
        )
        cfg0, cfg1 = spec.effective_config(0), spec.effective_config(1)
        assert cfg0 == TINY
        assert cfg1.epoch_offset_days == 14
        assert cfg1.bidders_entered == 1
        assert cfg1.interest_drift == ("dating:2",)
        # Everything the epoch doesn't own comes straight from the base.
        assert cfg1.skills_per_persona == TINY.skills_per_persona

    def test_effective_filterlist_add_and_remove(self):
        spec = two_epochs(
            filterlist_add=("fresh.tracker.example",),
            filterlist_remove=("amazon-adsystem.com",),
        )
        base_list, cur_list = (
            spec.effective_filterlist(0),
            spec.effective_filterlist(1),
        )
        assert base_list.is_blocked("amazon-adsystem.com")
        assert not base_list.is_blocked("fresh.tracker.example")
        assert not cur_list.is_blocked("amazon-adsystem.com")
        assert cur_list.is_blocked("fresh.tracker.example")
        assert cur_list.is_blocked("cdn.fresh.tracker.example")  # subdomains

    def test_epoch_day0_shifts_with_offset(self):
        spec = two_epochs(offset_days=21)
        assert (spec.epoch_day0(1) - spec.epoch_day0(0)).days == 21


class TestGenerate:
    def test_deterministic_for_same_base(self):
        a = TimelineSpec.generate(BASE, n_epochs=3)
        b = TimelineSpec.generate(BASE, n_epochs=3)
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_distinct_seeds_give_distinct_timelines(self):
        other = dataclasses.replace(BASE, seed=8)
        assert (
            TimelineSpec.generate(BASE, n_epochs=2).epochs
            != TimelineSpec.generate(other, n_epochs=2).epochs
        )

    def test_epoch_zero_is_unmutated(self):
        spec = TimelineSpec.generate(BASE, n_epochs=3)
        assert spec.epochs[0] == EpochSpec()

    def test_defaults_keep_global_knobs_at_zero(self):
        # The <30%-dirty criterion depends on this: only drift and churn
        # mutate by default, so the dirty set stays a roster fraction.
        spec = TimelineSpec.generate(BASE, n_epochs=3)
        for epoch in spec.epochs:
            assert epoch.offset_days == 0
            assert epoch.bidders_entered == 0
            assert epoch.bidders_exited == 0

    def test_mutations_accumulate(self):
        spec = TimelineSpec.generate(BASE, n_epochs=3, drift_personas=1)
        assert len(spec.epochs[1].interest_drift) == 1
        assert len(spec.epochs[2].interest_drift) == 2
        assert set(spec.epochs[1].interest_drift) <= set(
            spec.epochs[2].interest_drift
        )

    def test_gap_days_march_the_offsets(self):
        spec = TimelineSpec.generate(BASE, n_epochs=3, epoch_gap_days=14)
        assert [e.offset_days for e in spec.epochs] == [0, 14, 28]


class TestPersonaFingerprint:
    ROSTER = scaled_roster(1)

    def _dirty(self, config):
        return {
            self.ROSTER[pos].name
            for pos in dirty_positions(7, TINY, config, self.ROSTER)
        }

    def test_identical_configs_dirty_nobody(self):
        assert self._dirty(dataclasses.replace(TINY)) == set()

    def test_drift_dirties_only_the_named_persona(self):
        config = dataclasses.replace(TINY, interest_drift=("dating:2",))
        assert self._dirty(config) == {"dating"}

    def test_drift_shift_sum_is_what_matters(self):
        split = dataclasses.replace(TINY, interest_drift=("dating:1", "dating:2"))
        merged = dataclasses.replace(TINY, interest_drift=("dating:3",))
        persona = next(p for p in self.ROSTER if p.name == "dating")
        assert persona_fingerprint(7, split, persona) == persona_fingerprint(
            7, merged, persona
        )

    def test_churn_dirties_only_that_categorys_interest_personas(self):
        config = dataclasses.replace(TINY, catalog_churn=("smart-home:s1",))
        assert self._dirty(config) == {"smart-home"}

    def test_churn_never_dirties_controls(self):
        config = dataclasses.replace(TINY, catalog_churn=("smart-home:s1",))
        for persona in self.ROSTER:
            if persona.kind != "interest":
                assert persona_fingerprint(7, config, persona) == persona_fingerprint(
                    7, TINY, persona
                )

    def test_epoch_offset_dirties_everyone(self):
        config = dataclasses.replace(TINY, epoch_offset_days=7)
        assert self._dirty(config) == {p.name for p in self.ROSTER}

    def test_bidder_churn_dirties_everyone(self):
        config = dataclasses.replace(TINY, bidders_entered=1)
        assert self._dirty(config) == {p.name for p in self.ROSTER}

    def test_seed_root_reaches_the_fingerprint(self):
        persona = self.ROSTER[0]
        assert persona_fingerprint(7, TINY, persona) != persona_fingerprint(
            8, TINY, persona
        )

    def test_filterlist_updates_dirty_nobody(self):
        # Filter lists classify traffic after the fact; they are not part
        # of ExperimentConfig at all, so no fingerprint can move.
        spec = two_epochs(filterlist_add=("fresh.tracker.example",))
        assert (
            dirty_positions(
                7, spec.effective_config(0), spec.effective_config(1), self.ROSTER
            )
            == []
        )
