"""Persona-sharded parallel campaign runner with a crash-safe supervisor.

The serial campaign (``run_campaign(config, seed)``) is a
single pass over the full persona roster.  But personas are measurement
*units*: every per-persona artifact is derived from seed-keyed random
substreams (:class:`~repro.util.rng.Seed`, :class:`~repro.util.rng.StreamFamily`),
never from call order, so a persona's artifacts are identical whether or
not other personas share its world.  That invariance is what this module
exploits: partition the roster into contiguous shards, run each shard in
its own worker against a private world built from the same root seed,
then merge the shard artifacts back — deterministically — into one
:class:`~repro.core.experiment.AuditDataset` whose exported form is
bit-identical to the serial run's.

Determinism rules the merge relies on:

* shards are contiguous slices of the canonical ``all_personas()``
  order, so re-inserting personas in that order reproduces the serial
  dataset's dict ordering (exports iterate insertion order);
* site discovery is seed-determined, so every shard discovers the same
  prebid/crawl sets — the merge asserts this instead of trusting it;
* policy fetches are collected per interest persona in roster order, so
  concatenating shard lists in shard order matches the serial list.

Workers return :class:`ShardResult`, a world-free bundle that pickles
cleanly for the process backend (a live world holds service closures,
which do not pickle).  The merged dataset carries a fresh
``build_world(seed)`` as its generative-truth handle.

Crash safety
------------

Shards are driven by a **supervisor** rather than a bare futures loop.
Every worker publishes its :class:`ShardResult` to a
:class:`~repro.core.checkpoint.ShardJournal` (an ephemeral one when
checkpointing is off), and the supervisor polls the journal plus worker
liveness under a wall-clock watchdog:

* a worker that dies without publishing is a **crash** — the shard is
  requeued up to ``max_shard_retries`` times;
* a worker that exceeds ``shard_timeout`` host seconds is **hung** —
  the watchdog reaps it (``terminate()`` for processes, a cancel event
  for threads) and requeues the shard.  The watchdog reads the host
  clock only; the simulation's :class:`~repro.util.clock.SimClock`
  never gates supervision;
* a journal entry that fails validation is **poisoned** — quarantined
  (``*.corrupt``) and the shard requeued.

What happens when a shard exhausts its attempts is the
``on_shard_failure`` policy: ``"retry"`` (default) raises
:class:`ShardFailure` after the retry budget, ``"raise"`` propagates on
the *first* failure, and ``"degrade"`` merges the completed shards into
an explicitly-partial dataset — the dropped personas land in
``dataset.missing_personas``, the run manifest, and ``supervisor.*``
counters, never silently absent.

Every recovery path is deterministically testable through
:class:`WorkerFaultPlan`, seeded worker-level fault injection in the
spirit of :mod:`repro.netsim.faults`: crash-before-result, hang, or
poison-result decisions drawn per ``(shard, attempt)`` from
``seed.derive("supervisor")``, or pinned exactly with
:meth:`WorkerFaultPlan.targeted`.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.checkpoint import (
    CorruptShardError,
    ShardJournal,
    atomic_write_bytes,
)
from repro.core.experiment import (
    AuditDataset,
    ExperimentConfig,
    ExperimentRunner,
    PersonaArtifacts,
    PolicyFetch,
)
from repro.core.personas import Persona, all_personas, scaled_roster
from repro.core.world import build_config_world, build_world
from repro.data.websites import WebsiteSpec
from repro.obs import ObsCollector, merge_collectors
from repro.util.rng import Seed, StreamFamily

__all__ = [
    "BACKENDS",
    "ON_SHARD_FAILURE",
    "WORKER_FAULT_KINDS",
    "ShardFailure",
    "ShardResult",
    "SupervisorPolicy",
    "SupervisorReport",
    "WorkerFaultDecision",
    "WorkerFaultPlan",
    "parallel_map",
    "shard_personas",
    "merge_shard_results",
]

#: Worker backends: "process" sidesteps the GIL (the campaign is pure
#: Python, so threads add no speedup); "thread" avoids fork/pickle cost
#: and is what the determinism tests exercise cheaply.
BACKENDS = ("process", "thread")

#: Supervisor policies for a shard that exhausts its attempts.
ON_SHARD_FAILURE = ("retry", "degrade", "raise")

#: Injectable worker failure modes, in decision-draw order (the order is
#: part of the deterministic contract, as in ``netsim.faults``).
WORKER_FAULT_KINDS = ("crash", "hang", "poison")

#: Exit code an injected worker crash dies with (process backend).
_CRASH_EXIT_CODE = 3

#: Bytes a poisoned worker publishes instead of a valid pickle payload.
_POISON_BYTES = b"poisoned shard result (injected by WorkerFaultPlan)"


def parallel_map(fn, items, workers=None, backend="thread"):
    """Order-preserving map with optional worker fan-out.

    ``workers=None`` (or ``<= 1``) runs serially in the caller's thread —
    the default.  With more workers the items are mapped across a thread
    or process pool, but results always come back in *input* order, not
    completion order, so downstream aggregation stays deterministic
    either way.  The process backend requires ``fn`` and every item to
    pickle; shared mutable state on ``fn`` (e.g. memo caches) is only
    shared under the thread backend.
    """
    from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    executor_cls = (
        ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
    )
    with executor_cls(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


@dataclass
class ShardResult:
    """World-free, picklable artifact bundle from one shard worker."""

    shard_index: int
    persona_names: List[str]
    personas: Dict[str, PersonaArtifacts]
    prebid_sites: List[WebsiteSpec]
    crawl_sites: List[WebsiteSpec]
    policy_fetches: List[PolicyFetch]
    timings: Dict[str, float] = field(default_factory=dict)
    #: Per-shard observability collector (None when tracing was off).
    #: Collectors are world-free, so they pickle across the process
    #: boundary with the rest of the bundle.
    obs: Optional[ObsCollector] = None


def shard_personas(
    personas: Sequence[Persona], num_shards: int
) -> List[List[Persona]]:
    """Partition ``personas`` into ≤ ``num_shards`` contiguous slices.

    Slices preserve the input order and differ in size by at most one,
    with the larger slices first.  The partition depends only on
    ``(len(personas), num_shards)`` — no randomness, no wall clock — so
    the same inputs always produce the same shards.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    personas = list(personas)
    if not personas:
        raise ValueError("cannot shard an empty persona list")
    num_shards = min(num_shards, len(personas))
    base, extra = divmod(len(personas), num_shards)
    shards: List[List[Persona]] = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        shards.append(personas[start : start + size])
        start += size
    return shards


def _run_shard(
    shard_index: int,
    seed: Seed,
    config: ExperimentConfig,
    persona_names: Sequence[str],
    collect_obs: bool = False,
) -> ShardResult:
    """Run the campaign for one persona subset in a private world.

    Module-level (not a closure) so the process backend can pickle it.
    The world is rebuilt inside the worker from the shared root seed:
    worlds hold unpicklable service closures and must never cross the
    process boundary.  With ``collect_obs`` the worker traces into a
    fresh :class:`~repro.obs.ObsCollector` that rides back on the result.
    """
    roster = {p.name: p for p in scaled_roster(config.roster_scale)}
    unknown = [n for n in persona_names if n not in roster]
    if unknown:
        raise ValueError(f"unknown personas in shard {shard_index}: {unknown}")
    personas = [roster[name] for name in persona_names]
    # Faults come from the root seed (never shard order): every shard's
    # FaultPlan draws identical per-(actor, domain) schedules, which is
    # what keeps faulted parallel runs byte-identical to serial.
    world = build_config_world(seed, config)
    obs = ObsCollector() if collect_obs else None
    dataset = ExperimentRunner(world, config, personas=personas, obs=obs).run()
    return ShardResult(
        shard_index=shard_index,
        persona_names=list(persona_names),
        personas=dataset.personas,
        prebid_sites=dataset.prebid_sites,
        crawl_sites=dataset.crawl_sites,
        policy_fetches=dataset.policy_fetches,
        timings=dataset.timings,
        obs=dataset.obs,
    )


def merge_shard_results(
    seed: Seed,
    results: Sequence[ShardResult],
    fault_profile: Optional[str] = None,
    *,
    config: Optional[ExperimentConfig] = None,
    expected_personas: Optional[Sequence[str]] = None,
    allow_partial: bool = False,
) -> AuditDataset:
    """Deterministically reassemble shard results into one dataset.

    Sorts by shard index (results may arrive in any completion order),
    asserts cross-shard agreement on the discovered site sets, and
    inserts personas in canonical roster order so the merged dict —
    and therefore every export that iterates it — matches the serial
    run exactly.

    Completeness is accounted for explicitly: personas in
    ``expected_personas`` (default: the canonical roster) that no shard
    delivered are a hard error unless ``allow_partial=True`` was
    requested (the supervisor's ``on_shard_failure="degrade"`` path),
    in which case they are recorded in ``dataset.missing_personas`` —
    a degraded merge is always distinguishable from a complete one.
    """
    if not results:
        raise ValueError("no shard results to merge")
    ordered = sorted(results, key=lambda r: r.shard_index)
    indices = [r.shard_index for r in ordered]
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate shard indices: {indices}")

    reference = ordered[0]
    for result in ordered[1:]:
        if (
            result.prebid_sites != reference.prebid_sites
            or result.crawl_sites != reference.crawl_sites
        ):
            raise RuntimeError(
                "shards disagree on discovered sites — the world build is "
                f"not seed-deterministic (shard {result.shard_index} vs "
                f"shard {reference.shard_index})"
            )

    by_name: Dict[str, PersonaArtifacts] = {}
    for result in ordered:
        for name, artifacts in result.personas.items():
            if name in by_name:
                raise ValueError(f"persona {name!r} appears in two shards")
            by_name[name] = artifacts

    expected = (
        [p.name for p in all_personas()]
        if expected_personas is None
        else list(expected_personas)
    )
    missing = tuple(name for name in expected if name not in by_name)
    if missing and not allow_partial:
        raise ValueError(
            f"shard results are missing personas {list(missing)}; a partial "
            "merge must be requested explicitly (allow_partial=True, or "
            "on_shard_failure='degrade' on the campaign)"
        )

    personas: Dict[str, PersonaArtifacts] = {}
    for name in expected:
        if name in by_name:
            personas[name] = by_name.pop(name)
    personas.update(by_name)  # custom personas outside the roster, if any

    policy_fetches: List[PolicyFetch] = []
    timings: Dict[str, float] = {}
    for result in ordered:
        policy_fetches.extend(result.policy_fetches)
        for phase, seconds in result.timings.items():
            timings[f"shard{result.shard_index}.{phase}"] = seconds

    obs = None
    if all(result.obs is not None for result in ordered):
        obs = merge_collectors(
            [result.obs for result in ordered],
            roster=expected,
        )

    return AuditDataset(
        personas=personas,
        prebid_sites=list(reference.prebid_sites),
        crawl_sites=list(reference.crawl_sites),
        policy_fetches=policy_fetches,
        # The merged dataset's generative-truth handle reflects the full
        # config when one is given (timeline epochs mutate the world).
        world=(
            build_config_world(seed, config)
            if config is not None
            else build_world(seed, faults=fault_profile)
        ),
        timings=timings,
        missing_personas=missing,
        obs=obs,
    )


# ---------------------------------------------------------------------- #
# Worker-level fault injection
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class WorkerFaultDecision:
    """One injected worker fault: what goes wrong for this attempt."""

    kind: str  # one of WORKER_FAULT_KINDS

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(f"unknown worker fault kind: {self.kind!r}")


class WorkerFaultPlan:
    """Seeded per-``(shard, attempt)`` worker fault schedule.

    Mirrors :class:`~repro.netsim.faults.FaultPlan` one level up the
    stack: where that plan fails individual *requests*, this one fails
    whole *workers* — crash before publishing a result, hang past the
    watchdog, or publish a poisoned (unreadable) result.  Decisions are
    drawn from :class:`~repro.util.rng.StreamFamily` substreams keyed by
    ``(shard_index, attempt)`` off ``seed.derive("supervisor")``, so a
    given attempt fails identically in every run of the same seed —
    every supervisor recovery path is deterministically testable.

    Rates are independent probabilities partitioning each attempt draw
    (their sum must stay ≤ 1; the remainder is a healthy worker).  For
    pinpoint tests, :meth:`targeted` builds a plan that faults exactly
    the ``(shard, attempt)`` pairs you name and nothing else.
    """

    def __init__(
        self,
        seed: Optional[Seed] = None,
        *,
        crash_rate: float = 0.0,
        hang_rate: float = 0.0,
        poison_rate: float = 0.0,
        hang_seconds: float = 3600.0,
        schedule: Optional[Dict[Tuple[int, int], str]] = None,
    ) -> None:
        for kind, rate in (
            ("crash", crash_rate),
            ("hang", hang_rate),
            ("poison", poison_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if crash_rate + hang_rate + poison_rate > 1.0:
            raise ValueError("worker fault rates must sum to <= 1")
        if hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        self.crash_rate = crash_rate
        self.hang_rate = hang_rate
        self.poison_rate = poison_rate
        self.hang_seconds = hang_seconds
        self.schedule: Optional[Dict[Tuple[int, int], str]] = None
        if schedule is not None:
            normalised: Dict[Tuple[int, int], str] = {}
            for (shard_index, attempt), kind in schedule.items():
                if kind not in WORKER_FAULT_KINDS:
                    raise ValueError(f"unknown worker fault kind: {kind!r}")
                normalised[(int(shard_index), int(attempt))] = kind
            self.schedule = normalised
        self._streams: Optional[StreamFamily] = None
        if self.schedule is None and crash_rate + hang_rate + poison_rate > 0:
            if seed is None:
                raise ValueError("rate-based worker faults require a seed")
            self._streams = StreamFamily(
                seed.derive("supervisor"), "worker-faults"
            )

    @classmethod
    def targeted(
        cls,
        schedule: Dict[Tuple[int, int], str],
        hang_seconds: float = 3600.0,
    ) -> "WorkerFaultPlan":
        """A plan faulting exactly the named ``(shard, attempt)`` pairs.

        Attempts are 1-based: ``{(2, 1): "crash"}`` crashes shard 2's
        first attempt and leaves its retry healthy.
        """
        return cls(schedule=schedule, hang_seconds=hang_seconds)

    @property
    def enabled(self) -> bool:
        if self.schedule is not None:
            return bool(self.schedule)
        return self.crash_rate + self.hang_rate + self.poison_rate > 0

    def decide(
        self, shard_index: int, attempt: int
    ) -> Optional[WorkerFaultDecision]:
        """The fault (if any) for this shard attempt (attempts 1-based)."""
        if self.schedule is not None:
            kind = self.schedule.get((shard_index, attempt))
            return WorkerFaultDecision(kind) if kind is not None else None
        if self._streams is None:
            return None
        draw = self._streams.stream(shard_index, attempt).random()
        edge = self.crash_rate
        if draw < edge:
            return WorkerFaultDecision("crash")
        edge += self.hang_rate
        if draw < edge:
            return WorkerFaultDecision("hang")
        edge += self.poison_rate
        if draw < edge:
            return WorkerFaultDecision("poison")
        return None


# ---------------------------------------------------------------------- #
# Supervisor
# ---------------------------------------------------------------------- #


class ShardFailure(RuntimeError):
    """A shard could not be completed under the supervisor's policy."""

    def __init__(self, shard_index: int, outcomes: Sequence[str], detail: str):
        self.shard_index = shard_index
        self.outcomes = tuple(outcomes)
        super().__init__(
            f"shard {shard_index} failed after attempts "
            f"{list(self.outcomes)}: {detail}"
        )


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs governing shard retry, watchdog, and failure handling."""

    #: ``"retry"`` — requeue up to ``max_shard_retries`` times, then
    #: raise.  ``"degrade"`` — same retry budget, but exhausted shards
    #: are dropped and the merge is explicitly partial.  ``"raise"`` —
    #: propagate the first failure immediately, no retry.
    on_shard_failure: str = "retry"
    #: Host (wall-clock) seconds an attempt may run before the watchdog
    #: reaps it; ``None`` disables the watchdog.  Independent of the
    #: simulated clock — a hung worker burns no sim time.
    shard_timeout: Optional[float] = None
    #: Requeues per shard after its first failed attempt.
    max_shard_retries: int = 2
    #: Supervisor poll cadence (host seconds).
    poll_interval: float = 0.05
    #: Seeded worker-level fault injection (tests, chaos CI).
    worker_faults: Optional[WorkerFaultPlan] = None

    def __post_init__(self) -> None:
        if self.on_shard_failure not in ON_SHARD_FAILURE:
            raise ValueError(
                f"on_shard_failure must be one of {ON_SHARD_FAILURE}, got "
                f"{self.on_shard_failure!r}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive, got {self.shard_timeout}"
            )
        if self.max_shard_retries < 0:
            raise ValueError(
                f"max_shard_retries must be >= 0, got {self.max_shard_retries}"
            )
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )


@dataclass
class SupervisorReport:
    """What the supervisor did to get (or fail to get) every shard."""

    #: Outcome history per shard, in attempt order: ``"ok"``,
    #: ``"crash"``, ``"hang"``, ``"poison"``, or ``"checkpoint"`` (the
    #: shard was loaded from the journal on resume, no attempt made).
    attempts: Dict[int, List[str]] = field(default_factory=dict)
    #: Shards served from the checkpoint journal.
    resumed_shards: Tuple[int, ...] = ()
    #: Shards dropped under ``on_shard_failure="degrade"``.
    failed_shards: Tuple[int, ...] = ()
    #: Personas of the failed shards, in plan order.
    missing_personas: Tuple[str, ...] = ()

    @property
    def retries(self) -> int:
        """Attempts beyond each shard's first (checkpoint loads excluded)."""
        return sum(
            max(0, len([o for o in outcomes if o != "checkpoint"]) - 1)
            for outcomes in self.attempts.values()
        )

    def outcome_count(self, kind: str) -> int:
        return sum(
            outcomes.count(kind) for outcomes in self.attempts.values()
        )


def _thread_worker(
    journal: ShardJournal,
    shard_index: int,
    attempt: int,
    seed: Seed,
    config: ExperimentConfig,
    persona_names: Sequence[str],
    collect_obs: bool,
    fault_plan: Optional[WorkerFaultPlan],
    shard_fn,
    cancel_event: threading.Event,
    result_box: Dict[str, ShardResult],
    wake: threading.Event,
) -> None:
    """Thread-backend worker body: compute one shard, publish to the journal.

    A cancelled (reaped) thread cannot be killed, so it checks the
    cancel event at every stage and exits without publishing — an
    abandoned attempt never races the retry that replaced it.  After the
    journal write lands, the result is also placed in ``result_box`` so
    the supervisor (same process) skips the disk round trip — the
    journal stays the durable record, the box is just the fast channel.
    """
    try:
        decision = (
            fault_plan.decide(shard_index, attempt)
            if fault_plan is not None
            else None
        )
        if decision is not None and decision.kind == "crash":
            journal.write_error(
                shard_index, f"injected worker crash (attempt {attempt})"
            )
            return
        if decision is not None and decision.kind == "hang":
            cancel_event.wait(fault_plan.hang_seconds)
            if cancel_event.is_set():
                return
        result = shard_fn(shard_index, seed, config, persona_names, collect_obs)
        if cancel_event.is_set():
            return
        if decision is not None and decision.kind == "poison":
            atomic_write_bytes(journal.shard_path(shard_index), _POISON_BYTES)
            return
        journal.write_shard(shard_index, result)
        result_box["result"] = result
    except BaseException:
        if not cancel_event.is_set():
            try:
                journal.write_error(shard_index, traceback.format_exc())
            except OSError:
                pass
    finally:
        wake.set()  # worker is done (published, faulted, or cancelled)


def _process_worker(
    journal: ShardJournal,
    shard_index: int,
    attempt: int,
    seed: Seed,
    config: ExperimentConfig,
    persona_names: Sequence[str],
    collect_obs: bool,
    fault_plan: Optional[WorkerFaultPlan],
    shard_fn,
) -> None:
    """Process-backend worker body (module-level so it pickles)."""
    try:
        decision = (
            fault_plan.decide(shard_index, attempt)
            if fault_plan is not None
            else None
        )
        if decision is not None and decision.kind == "crash":
            os._exit(_CRASH_EXIT_CODE)  # die before publishing anything
        if decision is not None and decision.kind == "hang":
            time.sleep(fault_plan.hang_seconds)
        result = shard_fn(shard_index, seed, config, persona_names, collect_obs)
        if decision is not None and decision.kind == "poison":
            atomic_write_bytes(journal.shard_path(shard_index), _POISON_BYTES)
            return
        journal.write_shard(shard_index, result)
    except BaseException:
        try:
            journal.write_error(shard_index, traceback.format_exc())
        except OSError:
            pass
        os._exit(1)


class _WorkerUnit:
    """One live shard attempt: its handle, deadline, and reaping."""

    def __init__(self, backend: str, attempt: int, deadline: Optional[float]):
        self.backend = backend
        self.attempt = attempt
        self.deadline = deadline
        self.cancel_event = threading.Event()
        #: In-process fast result channel (thread backend only): holds
        #: the ShardResult once the journal write has landed, sparing
        #: the supervisor the pickle round trip through disk.
        self.result_box: Dict[str, ShardResult] = {}
        self.handle: object = None

    @property
    def alive(self) -> bool:
        return self.handle.is_alive()

    @property
    def exit_detail(self) -> str:
        if self.backend == "process":
            return f"worker exit code {self.handle.exitcode}"
        return "worker thread ended"

    def reap(self) -> None:
        """Stop a hung attempt: terminate the process / cancel the thread."""
        if self.backend == "process":
            self.handle.terminate()
            self.handle.join(timeout=5.0)
        else:
            self.cancel_event.set()

    def finalize(self) -> None:
        """Collect a finished worker (no-op for abandoned threads)."""
        if self.backend == "process":
            self.handle.join(timeout=5.0)
        else:
            self.cancel_event.set()
            self.handle.join(timeout=0.1)


class _ShardSupervisor:
    """Drives every shard to completion (or policy-sanctioned failure).

    The loop is journal-driven: a shard is done when a *valid* journal
    entry exists for it, regardless of which attempt produced it.
    Liveness is sampled before the journal is read, so a worker that
    publishes and exits between two polls is never misread as a crash
    (publish happens-before exit).
    """

    def __init__(
        self,
        journal: ShardJournal,
        seed: Seed,
        config: ExperimentConfig,
        backend: str,
        collect_obs: bool,
        policy: SupervisorPolicy,
        shard_fn=_run_shard,
    ) -> None:
        self.journal = journal
        self.seed = seed
        self.config = config
        self.backend = backend
        self.collect_obs = collect_obs
        self.policy = policy
        self.shard_fn = shard_fn
        self._active: Dict[int, _WorkerUnit] = {}
        self._outcomes: Dict[int, List[str]] = {
            index: [] for index in range(len(journal.shard_plan))
        }
        self._failed: List[int] = []
        #: Set by thread workers when they finish, so the supervisor
        #: wakes immediately instead of sleeping out the poll interval.
        #: Process workers can't set it; they are caught by the poll.
        self._wake = threading.Event()

    # ------------------------------------------------------------------ #

    def run(
        self, preloaded: Optional[Dict[int, ShardResult]] = None
    ) -> Tuple[Dict[int, ShardResult], SupervisorReport]:
        results: Dict[int, ShardResult] = {}
        resumed: List[int] = []
        for index, result in sorted((preloaded or {}).items()):
            results[index] = result
            self._outcomes[index].append("checkpoint")
            resumed.append(index)

        raising: Optional[BaseException] = None
        try:
            for index in range(len(self.journal.shard_plan)):
                if index not in results:
                    self._spawn(index, attempt=1)
            while self._active:
                # Clear before polling: a publish landing mid-poll re-sets
                # the event, so the wait below returns immediately.
                self._wake.clear()
                self._poll(results)
                if self._active:
                    self._wake.wait(self.policy.poll_interval)
        except BaseException as exc:
            raising = exc
            raise
        finally:
            for unit in self._active.values():
                unit.reap()
            self._active.clear()
            missing = self._missing_personas()
            status = (
                "failed"
                if raising is not None
                else ("partial" if missing else "complete")
            )
            self.journal.write_manifest(
                status=status,
                attempts=self._outcomes,
                missing_personas=missing,
                package_version=_package_version(),
            )

        report = SupervisorReport(
            attempts={
                index: list(outcomes)
                for index, outcomes in self._outcomes.items()
            },
            resumed_shards=tuple(resumed),
            failed_shards=tuple(sorted(self._failed)),
            missing_personas=self._missing_personas(),
        )
        return results, report

    # ------------------------------------------------------------------ #

    def _spawn(self, index: int, attempt: int) -> None:
        deadline = (
            time.monotonic() + self.policy.shard_timeout
            if self.policy.shard_timeout is not None
            else None
        )
        unit = _WorkerUnit(self.backend, attempt, deadline)
        args = (
            self.journal,
            index,
            attempt,
            self.seed,
            self.config,
            list(self.journal.shard_plan[index]),
            self.collect_obs,
            self.policy.worker_faults,
            self.shard_fn,
        )
        if self.backend == "process":
            unit.handle = multiprocessing.Process(
                target=_process_worker, args=args, daemon=True
            )
        else:
            unit.handle = threading.Thread(
                target=_thread_worker,
                args=args + (unit.cancel_event, unit.result_box, self._wake),
                daemon=True,
            )
        self._active[index] = unit
        unit.handle.start()

    def _poll(self, results: Dict[int, ShardResult]) -> None:
        for index in sorted(self._active):
            unit = self._active[index]
            # Fast channel first (thread backend): the box is only set
            # after the journal write landed, so taking it never skips
            # durability.
            boxed = unit.result_box.get("result")
            if boxed is not None:
                unit.finalize()
                del self._active[index]
                self._outcomes[index].append("ok")
                results[index] = boxed
                continue
            # Sample liveness BEFORE reading the journal: publish
            # happens-before worker exit, so alive=False with no entry
            # really is a crash, never a lost result.
            alive = unit.alive
            try:
                result = self.journal.load_shard(index)
            except CorruptShardError as exc:
                self.journal.quarantine(index)
                self._fail(index, "poison", str(exc))
                continue
            if result is not None:
                unit.finalize()
                del self._active[index]
                self._outcomes[index].append("ok")
                results[index] = result
                continue
            if not alive:
                detail = (
                    self.journal.read_error(index)
                    or f"worker exited without publishing a result "
                    f"({unit.exit_detail})"
                )
                self._fail(index, "crash", detail)
                continue
            if unit.deadline is not None and time.monotonic() > unit.deadline:
                unit.reap()
                self._fail(
                    index,
                    "hang",
                    f"no result within shard_timeout="
                    f"{self.policy.shard_timeout}s; worker reaped",
                )

    def _fail(self, index: int, kind: str, detail: str) -> None:
        from repro.core.iosim import is_enospc_text

        unit = self._active.pop(index)
        self._outcomes[index].append(kind)
        attempts_used = unit.attempt
        budget = 1 + self.policy.max_shard_retries
        policy = self.policy.on_shard_failure
        if policy == "raise":
            raise ShardFailure(index, self._outcomes[index], detail)
        if is_enospc_text(detail):
            # A full disk does not heal on a shard retry: burn no more
            # attempts (and no more disk), degrade this shard right away
            # so the run lands partial with its personas accounted.
            self._outcomes[index].append("enospc-degrade")
            self._failed.append(index)
            return
        if attempts_used >= budget:
            if policy == "degrade":
                self._failed.append(index)
                return
            raise ShardFailure(index, self._outcomes[index], detail)
        self._spawn(index, attempt=attempts_used + 1)

    def _missing_personas(self) -> Tuple[str, ...]:
        failed = set(self._failed)
        return tuple(
            name
            for index, names in enumerate(self.journal.shard_plan)
            for name in names
            if index in failed
        )


def _package_version() -> str:
    from repro import __version__

    return __version__


# ---------------------------------------------------------------------- #
# Engine
# ---------------------------------------------------------------------- #


def _run_parallel_experiment(
    seed: Seed,
    config: ExperimentConfig = ExperimentConfig(),
    workers: int = 2,
    backend: str = "process",
    collect_obs: bool = False,
    *,
    checkpoint_dir=None,
    resume: bool = False,
    policy: Optional[SupervisorPolicy] = None,
) -> Tuple[AuditDataset, SupervisorReport]:
    """Run the campaign sharded by persona under the shard supervisor.

    Internal parallel engine behind :func:`repro.core.run_campaign`.
    The exported form of the returned dataset is bit-identical to the
    serial campaign's for any worker count and either backend — see
    ``tests/integration/test_parallel_equivalence.py`` — and with
    ``collect_obs`` the merged trace's simulated-time span tree is
    byte-identical too (``tests/integration/test_obs_equivalence.py``).
    Completed shards are journaled to ``checkpoint_dir`` (an ephemeral
    directory when unset); ``resume=True`` loads valid checkpointed
    shards instead of recomputing them, which — shard artifacts being
    seed-deterministic — keeps a killed-and-resumed campaign's exports
    byte-identical to an uninterrupted run's
    (``tests/integration/test_resume_determinism.py``).

    Returns the merged dataset plus the :class:`SupervisorReport` of
    attempt history, resumed shards, and dropped personas.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")
    policy = policy if policy is not None else SupervisorPolicy()

    from repro.core.cache import config_fingerprint

    started = time.perf_counter()
    shards = shard_personas(scaled_roster(config.roster_scale), workers)
    plan = [[p.name for p in shard] for shard in shards]

    ephemeral_root: Optional[str] = None
    if checkpoint_dir is None:
        ephemeral_root = tempfile.mkdtemp(prefix="repro-shard-journal-")
        journal_root = ephemeral_root
    else:
        journal_root = checkpoint_dir
    journal = ShardJournal(
        journal_root, seed.root, config_fingerprint(config), plan
    )

    try:
        preloaded: Dict[int, ShardResult] = {}
        if resume:
            journal.validate_for_resume()
            preloaded = journal.load_completed()
        else:
            journal.reset()
            journal.write_manifest(
                status="running", package_version=_package_version()
            )

        supervisor = _ShardSupervisor(
            journal, seed, config, backend, collect_obs, policy
        )
        results, report = supervisor.run(preloaded)
    finally:
        if ephemeral_root is not None:
            shutil.rmtree(ephemeral_root, ignore_errors=True)

    scatter_elapsed = time.perf_counter() - started
    dataset = merge_shard_results(
        seed,
        [results[index] for index in sorted(results)],
        fault_profile=config.fault_profile,
        config=config,
        expected_personas=[name for names in plan for name in names],
        allow_partial=policy.on_shard_failure == "degrade",
    )
    dataset.timings["scatter"] = scatter_elapsed
    dataset.timings["total"] = time.perf_counter() - started

    if dataset.obs is not None:
        # Supervisor counters ride on the merged collector, but only
        # when something actually happened — a healthy run's merged
        # counters stay identical to the serial run's.
        for name, count in (
            ("supervisor.retries", report.retries),
            ("supervisor.crashes", report.outcome_count("crash")),
            ("supervisor.hangs_reaped", report.outcome_count("hang")),
            ("supervisor.poisoned_results", report.outcome_count("poison")),
            ("supervisor.shards_failed", len(report.failed_shards)),
            ("supervisor.checkpoints_loaded", len(report.resumed_shards)),
            ("supervisor.personas_missing", len(report.missing_personas)),
        ):
            if count:
                dataset.obs.inc(name, count)
    return dataset, report
