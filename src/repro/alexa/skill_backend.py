"""Skill backend execution.

When the Alexa cloud routes an utterance to a skill, the backend produces
*directives*: content URLs for the device to fetch (this is how Echo
traffic reaches vendor and third-party endpoints) and data-collection
events to upload to Amazon (this is what the AVS Echo's plaintext tap
exposes to the data-type analysis of §7.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.data import datatypes as dt
from repro.data.skill_catalog import SkillSpec
from repro.util.rng import Seed, StreamFamily

__all__ = ["Directive", "SkillResult", "SkillBackend"]


@dataclass(frozen=True)
class Directive:
    """One instruction returned to the device."""

    kind: str  # "fetch" | "upload" | "speak" | "stream"
    url: str = ""
    speech: str = ""
    data: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in {"fetch", "upload", "speak", "stream"}:
            raise ValueError(f"unknown directive kind: {self.kind}")


@dataclass
class SkillResult:
    """Outcome of one skill invocation."""

    skill_id: str
    handled: bool
    directives: List[Directive] = field(default_factory=list)
    #: True when the backend was unavailable and Alexa answered instead
    #: (the "redirected to Alexa" failure mode of §3.1.1).
    redirected_to_alexa: bool = False


class SkillBackend:
    """Executes a skill's server-side logic for one invocation."""

    #: Probability a request is redirected to Alexa (backend flakiness).
    REDIRECT_RATE = 0.02

    def __init__(self, spec: SkillSpec, seed: Seed) -> None:
        self.spec = spec
        # One flakiness stream per customer: backends are shared across
        # accounts (streaming skills serve several personas), and a single
        # sequential stream would make one persona's redirects depend on
        # which other personas invoked the skill first.
        self._streams = StreamFamily(seed, "skill-backend", spec.skill_id)

    def invoke(
        self,
        transcript: str,
        customer_id: str,
        allow_streaming: bool = True,
        account_linked: bool = True,
    ) -> SkillResult:
        """Handle one routed utterance.

        ``allow_streaming`` is False on the AVS Echo, which cannot play
        streamed content (§3.2): stream/fetch directives are suppressed
        there by the caller, but data uploads still occur.

        ``account_linked`` is False when the skill requires an external
        account that was never linked (§3.1.1's iRobot example): the
        skill asks for linking and skips its content fetches, but Amazon-
        mediated data collection happens regardless.
        """
        if self._streams.stream(customer_id).random() < self.REDIRECT_RATE:
            return SkillResult(
                skill_id=self.spec.skill_id, handled=False, redirected_to_alexa=True
            )

        if self.spec.requires_account_linking and not account_linked:
            directives = [
                Directive(
                    kind="speak",
                    speech=(
                        f"To use {self.spec.name}, please link your account in "
                        "the Alexa app."
                    ),
                )
            ]
            data = self._collected_data(transcript, customer_id)
            if data:
                directives.append(Directive(kind="upload", data=data))
            return SkillResult(
                skill_id=self.spec.skill_id, handled=True, directives=directives
            )

        directives: List[Directive] = [
            Directive(
                kind="speak",
                speech=f"Here is {self.spec.name}: your {self.spec.category} update.",
            )
        ]
        for domain in self.spec.other_endpoints:
            directives.append(
                Directive(kind="fetch", url=f"https://{domain}/content/{self.spec.skill_id}")
            )
        if self.spec.is_streaming and allow_streaming:
            directives.append(
                Directive(kind="stream", url=f"https://{self._stream_host()}/stream")
            )
        data = self._collected_data(transcript, customer_id)
        if data:
            directives.append(Directive(kind="upload", data=data))
        return SkillResult(
            skill_id=self.spec.skill_id, handled=True, directives=directives
        )

    def _stream_host(self) -> str:
        """Pick the streaming host: first non-Amazon endpoint or Amazon CDN."""
        if self.spec.other_endpoints:
            return self.spec.other_endpoints[0]
        return "d1s31zyz7dcc2d.cloudfront.net"

    def _collected_data(self, transcript: str, customer_id: str) -> Dict[str, str]:
        """Materialize the data types this skill collects (Table 13)."""
        values: Dict[str, str] = {}
        for data_type in self.spec.data_types:
            if data_type == dt.VOICE_RECORDING:
                values[data_type] = transcript
            elif data_type == dt.CUSTOMER_ID:
                values[data_type] = customer_id
            elif data_type == dt.SKILL_ID:
                values[data_type] = self.spec.skill_id
            elif data_type == dt.LANGUAGE:
                values[data_type] = "en-US"
            elif data_type == dt.TIMEZONE:
                values[data_type] = "America/Los_Angeles"
            elif data_type == dt.OTHER_PREFERENCES:
                values[data_type] = "units=imperial;explicit=off"
            elif data_type == dt.AUDIO_PLAYER_EVENTS:
                values[data_type] = "PlaybackStarted,PlaybackStopped"
        return values
