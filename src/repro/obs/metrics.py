"""Typed counters and gauges with deterministic cross-shard merging.

Two metric kinds, deliberately minimal:

* :class:`Counter` — monotonically increasing integers (requests
  emitted, bids collected, DSAR files missing, cookies synced);
* :class:`Gauge` — a float observation (queue depth, speedup factor).

Every metric declares a **merge policy** at creation, so combining the
per-shard registries of a parallel run is deterministic and
self-describing:

``sum``
    add shard values — the right policy for per-persona work, where the
    shard totals partition the serial total;
``first``
    all shards must agree (work duplicated per shard, e.g. the prebid
    discovery probe); disagreement raises;
``max`` / ``min``
    extreme across shards (high-water marks).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "MetricsRegistry", "MERGE_POLICIES"]

MERGE_POLICIES = ("sum", "first", "max", "min")

#: Gauges are point-in-time observations; summing them is almost always
#: a bug, so the policy is rejected at creation.
_GAUGE_POLICIES = ("first", "max", "min")


class Counter:
    """A monotonically increasing integer metric."""

    kind = "counter"

    def __init__(self, name: str, merge: str = "sum") -> None:
        if merge not in MERGE_POLICIES:
            raise ValueError(
                f"merge policy must be one of {MERGE_POLICIES}, got {merge!r}"
            )
        self.name = name
        self.merge = merge
        self.value = 0

    def inc(self, n: int = 1) -> int:
        if not isinstance(n, int) or isinstance(n, bool):
            raise TypeError(f"counter {self.name!r} increments must be int, got {n!r}")
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc by {n})")
        self.value += n
        return self.value


class Gauge:
    """A float observation; ``set`` overwrites."""

    kind = "gauge"

    def __init__(self, name: str, merge: str = "max") -> None:
        if merge not in _GAUGE_POLICIES:
            raise ValueError(
                f"gauge merge policy must be one of {_GAUGE_POLICIES}, got {merge!r}"
            )
        self.name = name
        self.merge = merge
        self.value: float = 0.0
        self.observed = False

    def set(self, value: float) -> float:
        self.value = float(value)
        self.observed = True
        return self.value


Metric = Union[Counter, Gauge]


def _apply_policy(name: str, policy: str, values: List[Union[int, float]]):
    if policy == "sum":
        return sum(values)
    if policy == "first":
        for value in values[1:]:
            if value != values[0]:
                raise ValueError(
                    f"metric {name!r} declared merge='first' but shards "
                    f"disagree: {values!r}"
                )
        return values[0]
    if policy == "max":
        return max(values)
    return min(values)


class MetricsRegistry:
    """Name-keyed metric store with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------ #

    def counter(self, name: str, merge: str = "sum") -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Counter(name, merge)
            self._metrics[name] = metric
        elif not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a counter")
        elif metric.merge != merge:
            raise ValueError(
                f"counter {name!r} registered with merge={metric.merge!r}, "
                f"re-requested with merge={merge!r}"
            )
        return metric

    def gauge(self, name: str, merge: str = "max") -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Gauge(name, merge)
            self._metrics[name] = metric
        elif not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a gauge")
        elif metric.merge != merge:
            raise ValueError(
                f"gauge {name!r} registered with merge={metric.merge!r}, "
                f"re-requested with merge={merge!r}"
            )
        return metric

    def inc(self, name: str, n: int = 1, merge: str = "sum") -> int:
        """Increment (creating on first use) the counter ``name``."""
        return self.counter(name, merge).inc(n)

    def set_gauge(self, name: str, value: float, merge: str = "max") -> float:
        return self.gauge(name, merge).set(value)

    def value(self, name: str) -> Union[int, float]:
        return self._metrics[name].value

    def __contains__(self, name: object) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------ #

    def as_dict(self) -> Dict[str, Dict[str, Union[int, float]]]:
        """``{"counters": {...}, "gauges": {...}}``, names sorted."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif metric.observed:
                gauges[name] = metric.value
        return {"counters": counters, "gauges": gauges}

    # ------------------------------------------------------------------ #

    @staticmethod
    def merge(registries: Sequence["MetricsRegistry"]) -> "MetricsRegistry":
        """Combine shard registries under each metric's declared policy.

        Shards are processed in the given order (callers pass them sorted
        by shard index), so the result is deterministic.  A metric
        appearing in several shards with different kinds or policies is
        an error.
        """
        # name -> (kind, policy, values in shard order)
        seen: Dict[str, Tuple[str, str, List[Union[int, float]]]] = {}
        for registry in registries:
            for name in registry._metrics:
                metric = registry._metrics[name]
                if isinstance(metric, Gauge) and not metric.observed:
                    continue
                entry = seen.get(name)
                if entry is None:
                    seen[name] = (metric.kind, metric.merge, [metric.value])
                    continue
                kind, policy, values = entry
                if kind != metric.kind:
                    raise TypeError(
                        f"metric {name!r} is a {metric.kind} in one shard "
                        f"and a {kind} in another"
                    )
                if policy != metric.merge:
                    raise ValueError(
                        f"metric {name!r} has conflicting merge policies: "
                        f"{policy!r} vs {metric.merge!r}"
                    )
                values.append(metric.value)

        merged = MetricsRegistry()
        for name in sorted(seen):
            kind, policy, values = seen[name]
            result = _apply_policy(name, policy, values)
            if kind == "counter":
                merged.counter(name, policy).value = int(result)
            else:
                merged.gauge(name, policy).set(result)
        return merged
