"""Data-flow extraction from captured traffic (PoliCheck stage i).

Two extractors, matching the paper's split methodology (§7.2):

* :func:`extract_datatype_flows` reads the AVS Echo's pre-encryption
  plaintext log and yields ``<data type, amazon>`` flows per skill;
* :func:`extract_endpoint_flows` reads encrypted Echo captures and
  yields the contacted *organizations* per skill (entities only — the
  payloads are opaque).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.alexa.device import PlaintextRecord
from repro.netsim.pcap import CaptureSession
from repro.orgmap.resolver import OrgResolver

__all__ = ["DataFlow", "extract_datatype_flows", "extract_endpoint_flows"]


@dataclass(frozen=True)
class DataFlow:
    """One ``<data type, entity>`` tuple observed for a skill."""

    skill_id: str
    data_type: Optional[str]
    entity: str

    def __post_init__(self) -> None:
        if not self.skill_id or not self.entity:
            raise ValueError("skill_id and entity are required")


def extract_datatype_flows(
    plaintext_log: Iterable[PlaintextRecord],
) -> List[DataFlow]:
    """Extract data-type flows from the AVS Echo's plaintext tap.

    The AVS Echo only communicates with Amazon (§3.2), so the entity side
    of every tuple is the platform.
    """
    seen: Set[Tuple[str, str]] = set()
    flows: List[DataFlow] = []
    for record in plaintext_log:
        body = record.payload.get("body", {})
        if body.get("event") != "skill-data":
            continue
        skill_id = body.get("skill_id") or record.skill_id
        if not skill_id:
            continue
        for data_type in body.get("data", {}):
            key = (skill_id, data_type)
            if key in seen:
                continue
            seen.add(key)
            flows.append(
                DataFlow(
                    skill_id=skill_id,
                    data_type=data_type,
                    entity="Amazon Technologies, Inc.",
                )
            )
    return flows


def extract_endpoint_flows(
    captures: Dict[str, CaptureSession],
    resolver: OrgResolver,
) -> List[DataFlow]:
    """Extract per-skill endpoint organizations from encrypted captures.

    ``captures`` maps skill id → the capture bracketing that skill's
    session.  Organizations are attributed via observed DNS answers and
    SNI through the auditor's entity database (§3.2).
    """
    flows: List[DataFlow] = []
    for skill_id, capture in captures.items():
        dns_table = capture.dns_table()
        orgs: Set[str] = set()
        for flow in capture.flows():
            if flow.key[3] == "dns":
                continue
            attribution = resolver.attribute_ip(
                flow.remote_ip, dns_table, sni=flow.sni
            )
            if attribution.resolved:
                orgs.add(attribution.organization)
        for org in sorted(orgs):
            flows.append(DataFlow(skill_id=skill_id, data_type=None, entity=org))
    return flows
