"""Figure 3: CPM distributions across vanilla and interest personas on
common slots, (a) without and (b) with user interaction."""

import numpy as np

from repro.core.bids import figure3_series
from repro.core.report import render_distribution
from repro.data import categories as cat


def bench_figure3_bid_dists(benchmark, dataset):
    series = benchmark(figure3_series, dataset)

    print()
    print(render_distribution(series["pre"], title="Figure 3a (no interaction)"))
    print()
    print(render_distribution(series["post"], title="Figure 3b (with interaction)"))

    pre_medians = {p: float(np.median(v)) for p, v in series["pre"].items() if v}
    post_medians = {p: float(np.median(v)) for p, v in series["post"].items() if v}

    # 3a shape: without interaction there is no discernible difference —
    # the extreme/vanilla median ratio stays small.
    vanilla_pre = pre_medians[cat.VANILLA]
    ratio_spread = max(pre_medians.values()) / max(min(pre_medians.values()), 1e-9)
    assert ratio_spread < 2.0
    assert 0.5 < vanilla_pre / np.median(list(pre_medians.values())) < 2.0

    # 3b shape: with interaction every interest persona's median is above
    # vanilla's, most at >= 2x.
    vanilla_post = post_medians[cat.VANILLA]
    for persona in cat.ALL_CATEGORIES:
        assert post_medians[persona] > vanilla_post, persona
    assert (
        sum(1 for p in cat.ALL_CATEGORIES if post_medians[p] > 1.8 * vanilla_post)
        >= 7
    )
