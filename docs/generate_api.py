#!/usr/bin/env python3
"""Regenerate docs/API.md from the package's docstrings."""

import importlib
import inspect
import pathlib
import pkgutil

import repro


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.split("\n")[0]


def main() -> None:
    lines = [
        "# API reference",
        "",
        "Generated from the package's docstrings (`python docs/generate_api.py`).",
        "",
    ]
    for modinfo in sorted(
        pkgutil.walk_packages(repro.__path__, "repro."), key=lambda m: m.name
    ):
        if modinfo.ispkg or modinfo.name.endswith("__main__"):
            continue
        module = importlib.import_module(modinfo.name)
        lines.append(f"## `{modinfo.name}`")
        lines.append("")
        lines.append(first_line(module))
        lines.append("")
        exported = getattr(module, "__all__", None)
        if not exported:
            continue
        rows = []
        for symbol in exported:
            obj = getattr(module, symbol, None)
            if obj is None:
                continue
            if inspect.isclass(obj):
                kind = "class"
            elif callable(obj):
                kind = "function"
            else:
                kind = "constant"
            summary = first_line(obj) if kind != "constant" else ""
            rows.append((symbol, kind, summary.replace("|", "\\|")))
        if rows:
            lines.append("| name | kind | summary |")
            lines.append("|---|---|---|")
            lines.extend(
                f"| `{symbol}` | {kind} | {summary} |" for symbol, kind, summary in rows
            )
            lines.append("")
    target = pathlib.Path(__file__).with_name("API.md")
    target.write_text("\n".join(lines) + "\n")
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
