"""Figure 2: network traffic distribution by persona, domain, purpose,
and organization (the sankey's underlying flow counts)."""

from collections import Counter

from repro.core.report import render_table
from repro.core.traffic import analyze_traffic
from repro.data import categories as cat


def bench_figure2_flows(benchmark, dataset, world, vendor_by_skill):
    analysis = benchmark.pedantic(
        analyze_traffic,
        args=(dataset, world.org_resolver(), world.filter_list, vendor_by_skill),
        rounds=2,
        iterations=1,
    )

    # persona -> org class -> request count (the figure's edge weights).
    edges = Counter()
    for traffic in analysis.per_skill:
        for domain, (org, requests) in traffic.domains.items():
            edges[(traffic.persona, analysis.domain_class[domain])] += requests

    rows = [
        (cat.CATEGORY_DISPLAY[p], edges[(p, "amazon")], edges[(p, "skill vendor")], edges[(p, "third party")])
        for p in cat.ALL_CATEGORIES
    ]
    print()
    print(
        render_table(
            ["persona", "→ Amazon", "→ skill vendor", "→ third party"],
            rows,
            title="Figure 2 (flow weights)",
        )
    )

    # Shape: every persona's traffic is Amazon-dominated; only some
    # personas have third-party flows; Smart Home / Wine / Navigation
    # contact no third parties (§6.2).
    for persona in cat.ALL_CATEGORIES:
        assert edges[(persona, "amazon")] > 10 * edges[(persona, "third party")]
    for persona in (cat.SMART_HOME, cat.WINE, cat.NAVIGATION):
        assert edges[(persona, "third party")] == 0
    for persona in (cat.FASHION, cat.CONNECTED_CAR, cat.PETS):
        assert edges[(persona, "third party")] > 0
