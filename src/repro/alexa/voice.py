"""Voice frontend: wake word detection and speech transcription.

The Echo only records after the wake word (§2.2), but — as prior work
shows (and the paper cites) — devices misactivate.  The simulated ASR adds
a small word-error rate so downstream consumers cannot assume perfect
transcripts, mirroring the paper's use of automated transcription plus
manual review for audio ads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.util.rng import Seed, StreamFamily

__all__ = ["WAKE_WORDS", "VoiceFrontend", "Transcription"]

WAKE_WORDS: Tuple[str, ...] = ("alexa", "echo", "computer")

#: Phonetically confusable word pairs used to inject ASR errors.
_CONFUSIONS = {
    "four": "for",
    "to": "two",
    "there": "their",
    "by": "buy",
    "whether": "weather",
    "right": "write",
}


@dataclass(frozen=True)
class Transcription:
    """Result of transcribing one voice capture."""

    text: str
    confidence: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence out of range: {self.confidence}")


class VoiceFrontend:
    """Wake-word gate + simulated cloud ASR."""

    def __init__(
        self,
        seed: Seed,
        word_error_rate: float = 0.02,
        misactivation_rate: float = 0.005,
    ) -> None:
        if not 0.0 <= word_error_rate <= 1.0:
            raise ValueError("word_error_rate must be in [0, 1]")
        if not 0.0 <= misactivation_rate <= 1.0:
            raise ValueError("misactivation_rate must be in [0, 1]")
        self._rng = seed.rng("voice", "asr")
        self._streams = StreamFamily(seed, "voice", "asr")
        self.word_error_rate = word_error_rate
        self.misactivation_rate = misactivation_rate
        self.misactivations = 0

    def _rng_for(self, speaker: Optional[str]):
        """Noise stream for one speaker (device/customer).

        The frontend serves every device in the world; keying the error
        draws per speaker keeps one persona's transcripts independent of
        which other personas are talking — callers that pass no speaker
        share the legacy sequential stream.
        """
        if speaker is None:
            return self._rng
        return self._streams.stream(speaker)

    def detect_wake_word(
        self, utterance: str, speaker: Optional[str] = None
    ) -> Optional[str]:
        """Return the command after the wake word, or None if not awake.

        A small misactivation rate triggers recording without the wake
        word — the privacy failure mode documented in prior work [59].
        """
        words = utterance.strip().lower().split()
        if not words:
            return None
        if words[0].rstrip(",") in WAKE_WORDS:
            return " ".join(words[1:])
        if self._rng_for(speaker).random() < self.misactivation_rate:
            self.misactivations += 1
            return " ".join(words)
        return None

    def transcribe(self, speech: str, speaker: Optional[str] = None) -> Transcription:
        """Simulate cloud ASR with a small word-error rate."""
        rng = self._rng_for(speaker)
        words = speech.lower().split()
        out = []
        errors = 0
        for word in words:
            if word in _CONFUSIONS and rng.random() < self.word_error_rate:
                out.append(_CONFUSIONS[word])
                errors += 1
            else:
                out.append(word)
        confidence = max(0.0, 1.0 - errors / max(1, len(words)) - 0.01)
        return Transcription(text=" ".join(out), confidence=confidence)
