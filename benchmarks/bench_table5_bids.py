"""Table 5: median and mean bid values (CPM) for interest vs vanilla
personas on common ad slots, with interaction."""

from paper_targets import MAX_BID_FACTOR, TABLE5

from repro.core.bids import bid_summary_table, bid_summary_table_stream
from repro.core.report import render_table
from repro.data import categories as cat


def bench_table5_bids(benchmark, dataset):
    rows = benchmark(bid_summary_table, dataset)
    summaries = {r.persona: r.summary for r in rows}

    table = []
    for persona in list(cat.ALL_CATEGORIES) + [cat.VANILLA]:
        summary = summaries[persona]
        paper_median, paper_mean = TABLE5[persona]
        table.append(
            (
                persona,
                f"{summary.median:.3f}",
                f"{paper_median:.3f}",
                f"{summary.mean:.3f}",
                f"{paper_mean:.3f}",
            )
        )
    print()
    print(
        render_table(
            ["persona", "median", "paper", "mean", "paper"], table, title="Table 5"
        )
    )

    vanilla = summaries[cat.VANILLA]
    # Shape: every interest persona's median exceeds vanilla's, most by
    # >= 2x; means exceed vanilla's; Health & Fitness bids reach ~30x
    # the vanilla mean.
    for persona in cat.ALL_CATEGORIES:
        assert summaries[persona].median > vanilla.median, persona
        assert summaries[persona].mean > vanilla.mean, persona
    at_least_2x = sum(
        1
        for p in cat.ALL_CATEGORIES
        if summaries[p].median >= 1.8 * vanilla.median
    )
    assert at_least_2x >= 7
    assert summaries[cat.HEALTH].maximum >= MAX_BID_FACTOR * vanilla.mean


def bench_table5_bids_stream(benchmark, dataset, segment_store):
    """Table 5 rows must be bit-identical off the segment bid stream.

    The stream fold gathers each persona's common-slot CPMs in the same
    order the in-memory path does, so the summaries match exactly — not
    just approximately."""
    rows = benchmark(bid_summary_table_stream, segment_store)
    assert rows == bid_summary_table(dataset)
