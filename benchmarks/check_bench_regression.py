"""Gate a fresh ``--bench-json`` report against the committed baseline.

Usage::

    python benchmarks/check_bench_regression.py CURRENT.json \
        [BASELINE.json] [--tolerance 0.15]

The committed baseline (``benchmarks/BENCH_pipeline.json``) records the
``speedup`` ratio of each gated benchmark — optimized over legacy on the
same machine — which is what makes the comparison portable: absolute
seconds differ across runners, the ratio does not.  A benchmark fails
the gate when its current speedup drops more than ``--tolerance``
(default 15%) below the baseline's.

A baseline entry may instead (or additionally) declare ``max_ratio``:
an absolute ceiling on the current report's ``ratio`` field, used by
the flat-memory smoke (``benchmarks/BENCH_memory.json``) to cap the
large-roster/small-roster peak-memory ratio.  Ceilings already carry
their headroom, so ``--tolerance`` does not apply to them.  Fields
other than ``speedup``/``max_ratio`` are informational and never
gated.

Refresh the baseline by re-running the benchmark with
``--bench-json benchmarks/BENCH_pipeline.json`` and committing the
result (see the ``bench_pipeline_throughput`` docstring).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_pipeline.json"
DEFAULT_TOLERANCE = 0.15


def compare(current: dict, baseline: dict, tolerance: float) -> list:
    """Return a list of human-readable failures (empty when the gate passes)."""
    failures = []
    for name, expected in sorted(baseline.items()):
        gated = [k for k in ("speedup", "max_ratio") if k in expected]
        if not gated:
            continue
        measured = current.get(name)
        if measured is None:
            failures.append(f"{name}: missing from the current report")
            continue
        if "speedup" in expected:
            if "speedup" not in measured:
                failures.append(
                    f"{name}: current report has no 'speedup' field"
                )
            else:
                floor = expected["speedup"] * (1.0 - tolerance)
                if measured["speedup"] < floor:
                    failures.append(
                        f"{name}: speedup {measured['speedup']:.2f}x is below "
                        f"{floor:.2f}x ({100 * tolerance:.0f}% under the "
                        f"baseline's {expected['speedup']:.2f}x)"
                    )
        if "max_ratio" in expected:
            if "ratio" not in measured:
                failures.append(f"{name}: current report has no 'ratio' field")
            elif measured["ratio"] > expected["max_ratio"]:
                failures.append(
                    f"{name}: ratio {measured['ratio']:.2f}x exceeds the "
                    f"{expected['max_ratio']:.2f}x ceiling"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh --bench-json report")
    parser.add_argument(
        "baseline",
        type=Path,
        nargs="?",
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional speedup drop before failing (default 0.15)",
    )
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    failures = compare(current, baseline, args.tolerance)
    if failures:
        for line in failures:
            print(f"REGRESSION {line}", file=sys.stderr)
        return 1
    for name, expected in sorted(baseline.items()):
        if "speedup" in expected:
            print(
                f"ok {name}: speedup {current[name]['speedup']:.2f}x "
                f"(baseline {expected['speedup']:.2f}x)"
            )
        if "max_ratio" in expected:
            print(
                f"ok {name}: ratio {current[name]['ratio']:.2f}x "
                f"(ceiling {expected['max_ratio']:.2f}x)"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
