"""Organization mapping: entity lists, WHOIS, filter lists, and resolution.

The auditor-side knowledge used to turn raw endpoints from captures into
organizations and advertising/tracking labels (paper §3.2, §4.2).
"""

from repro.orgmap.entity_db import EntityDatabase, OrgEntity
from repro.orgmap.filterlists import FilterList, FilterRule, parse_rules
from repro.orgmap.resolver import UNKNOWN_ORG, Attribution, OrgResolver
from repro.orgmap.whois import REDACTED, WhoisRecord, WhoisService

__all__ = [
    "Attribution",
    "EntityDatabase",
    "FilterList",
    "FilterRule",
    "OrgEntity",
    "OrgResolver",
    "REDACTED",
    "UNKNOWN_ORG",
    "WhoisRecord",
    "WhoisService",
    "parse_rules",
]
