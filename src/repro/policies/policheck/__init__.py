"""PoliCheck-style privacy-policy consistency analysis (paper §7.2)."""

from repro.policies.policheck.analyzer import (
    DISCLOSURE_CLASSES,
    Disclosure,
    PolicheckAnalyzer,
)
from repro.policies.policheck.extraction import (
    DataFlow,
    extract_datatype_flows,
    extract_endpoint_flows,
)
from repro.policies.policheck.ontology import (
    DataOntology,
    EntityOntology,
    TermMatch,
    default_data_ontology,
    default_entity_ontology,
)
from repro.policies.policheck.validation import (
    CODER_NOISE_RATE,
    ValidationReport,
    human_code_flows,
    score_multiclass,
)

__all__ = [
    "CODER_NOISE_RATE",
    "DISCLOSURE_CLASSES",
    "DataFlow",
    "DataOntology",
    "Disclosure",
    "EntityOntology",
    "PolicheckAnalyzer",
    "TermMatch",
    "ValidationReport",
    "default_data_ontology",
    "default_entity_ontology",
    "extract_datatype_flows",
    "extract_endpoint_flows",
    "human_code_flows",
    "score_multiclass",
]
