"""End-to-end integration tests over the scaled-down campaign."""

import pytest

from repro.core.bids import common_slots, significance_vs_vanilla
from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.data import categories as cat
from repro.util.rng import Seed


class TestDatasetCompleteness:
    def test_thirteen_personas(self, small_dataset):
        assert len(small_dataset.personas) == 13

    def test_interest_personas_have_captures(self, small_dataset):
        for artifacts in small_dataset.interest_personas:
            assert artifacts.skill_captures
            for capture in artifacts.skill_captures.values():
                assert not capture.active  # stopped

    def test_vanilla_has_no_skill_captures(self, small_dataset):
        assert small_dataset.vanilla.skill_captures == {}

    def test_web_personas_have_no_echo_artifacts(self, small_dataset):
        for artifacts in small_dataset.personas.values():
            if artifacts.persona.kind == "web":
                assert artifacts.account is None
                assert artifacts.dsar_exports == []
                assert artifacts.avs_plaintext == []

    def test_every_echo_persona_has_bids_pre_and_post(self, small_dataset):
        for artifacts in small_dataset.personas.values():
            iterations = {b.iteration for b in artifacts.bids}
            assert any(i < 0 for i in iterations)
            assert any(i >= 0 for i in iterations)

    def test_dsar_export_counts(self, small_dataset):
        # 3 scheduled requests, +1 re-request where the file went missing.
        for artifacts in small_dataset.personas.values():
            if not artifacts.persona.uses_echo:
                continue
            assert len(artifacts.dsar_exports) in {3, 4}

    def test_audio_sessions_only_for_audio_personas(self, small_dataset):
        for artifacts in small_dataset.personas.values():
            expected = artifacts.persona.name in {
                cat.CONNECTED_CAR,
                cat.FASHION,
                cat.VANILLA,
            }
            assert bool(artifacts.audio_sessions) == expected

    def test_policy_fetch_per_installed_skill(self, small_dataset):
        expected = 9 * 6  # 9 interest personas x 6 skills in the small config
        assert len(small_dataset.policy_fetches) == expected

    def test_prebid_discovery_reached_target(self, small_dataset):
        assert len(small_dataset.prebid_sites) == 40
        assert all(s.supports_prebid for s in small_dataset.prebid_sites)


class TestCrossPersonaIsolation:
    def test_unique_device_ips(self, small_dataset):
        router = small_dataset.world.router
        ips = set(router._device_ips.values())
        assert len(ips) == len(router._device_ips)

    def test_captures_only_own_device(self, small_dataset):
        for artifacts in small_dataset.interest_personas:
            device_ids = {
                p.device_id
                for capture in artifacts.skill_captures.values()
                for p in capture
            }
            assert len(device_ids) <= 1

    def test_per_skill_attribution(self, small_dataset):
        """Each capture observes the third-party endpoints of its own skill."""
        catalog = small_dataset.world.catalog
        for artifacts in small_dataset.interest_personas:
            for skill_id, capture in artifacts.skill_captures.items():
                spec = catalog.by_id(skill_id)
                observed = {p.sni for p in capture if p.sni}
                for domain in spec.other_endpoints:
                    assert domain in observed


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        config = ExperimentConfig(
            skills_per_persona=2,
            pre_iterations=1,
            post_iterations=1,
            crawl_sites=2,
            prebid_discovery_target=5,
            audio_hours=0.5,
        )
        a = run_campaign(config, Seed(99))
        b = run_campaign(config, Seed(99))
        bids_a = [(r.slot_id, r.bidder, r.cpm) for r in a.vanilla.bids]
        bids_b = [(r.slot_id, r.bidder, r.cpm) for r in b.vanilla.bids]
        assert bids_a == bids_b
        ads_a = [r.creative.creative_id for r in a.artifacts(cat.PETS).ads]
        ads_b = [r.creative.creative_id for r in b.artifacts(cat.PETS).ads]
        assert ads_a == ads_b

    def test_different_seed_changes_bids(self):
        config = ExperimentConfig(
            skills_per_persona=2,
            pre_iterations=1,
            post_iterations=1,
            crawl_sites=2,
            prebid_discovery_target=5,
            audio_hours=0.5,
        )
        a = run_campaign(config, Seed(99))
        b = run_campaign(config, Seed(100))
        assert [r.cpm for r in a.vanilla.bids] != [r.cpm for r in b.vanilla.bids]


class TestStatisticalPipeline:
    def test_significance_runs_on_small_data(self, small_dataset):
        results = significance_vs_vanilla(small_dataset)
        assert set(results) == set(cat.ALL_CATEGORIES)
        for result in results.values():
            assert 0.0 <= result.p_value <= 1.0
            assert -1.0 <= result.effect_size <= 1.0

    def test_common_slots_nonempty(self, small_dataset):
        assert len(common_slots(small_dataset)) >= 3


class TestConfigValidation:
    def test_bad_skill_count_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(skills_per_persona=0)

    def test_bad_iterations_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(post_iterations=0)

    def test_zero_crawl_sites_rejected(self):
        with pytest.raises(ValueError, match="crawl_sites"):
            ExperimentConfig(crawl_sites=0)

    def test_zero_discovery_target_rejected(self):
        with pytest.raises(ValueError, match="prebid_discovery_target"):
            ExperimentConfig(prebid_discovery_target=0)

    def test_crawl_sites_beyond_discovery_target_rejected(self):
        # The crawl set is a prefix of the discovered sites; asking for
        # more crawl sites than the discovery target silently crawled a
        # short list before this was validated.
        with pytest.raises(ValueError, match="cannot exceed"):
            ExperimentConfig(crawl_sites=30, prebid_discovery_target=20)

    def test_nonpositive_audio_hours_rejected(self):
        with pytest.raises(ValueError, match="audio_hours"):
            ExperimentConfig(audio_hours=0.0)
        with pytest.raises(ValueError, match="audio_hours"):
            ExperimentConfig(audio_hours=-1.5)


class TestRerequestGuard:
    def test_rerequest_tolerates_personas_without_exports(self):
        """Regression: ``dsar_exports[-1]`` raised IndexError when a
        persona had never completed a DSAR request."""
        from repro.core.experiment import ExperimentRunner
        from repro.core.personas import all_personas
        from repro.core.world import build_world

        config = ExperimentConfig(
            skills_per_persona=2,
            pre_iterations=1,
            post_iterations=1,
            crawl_sites=2,
            prebid_discovery_target=5,
            audio_hours=0.5,
        )
        personas = [p for p in all_personas() if p.uses_echo][:2]
        runner = ExperimentRunner(build_world(Seed(31)), config, personas=personas)
        runner._setup_personas(personas)
        for persona in personas:
            assert runner._artifacts[persona.name].dsar_exports == []
        runner._rerequest_missing_interest_files(personas)  # must not raise
        for persona in personas:
            assert runner._artifacts[persona.name].dsar_exports == []
