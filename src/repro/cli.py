"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``        run the full (or scaled) campaign and export artifacts
``tables``     print the paper's headline tables from a fresh campaign
``policheck``  run the §7 policy-compliance analysis
``sync``       run the §5.5 cookie-sync analysis
``audio``      run the §5.4 audio-ad study
``defend``     run the §8.1 defense evaluations
``version``    print the package version
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.core.bids import bid_summary_table, significance_vs_vanilla
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.export import export_dataset
from repro.core.report import render_kv, render_table
from repro.core.syncing import detect_cookie_syncing
from repro.util.rng import Seed

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="echo-audit: smart-speaker ecosystem auditing framework",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the campaign and export artifacts")
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--out", default="results", help="output directory")
    run.add_argument("--small", action="store_true", help="scaled-down campaign")
    run.add_argument(
        "--parallel",
        action="store_true",
        help="shard the campaign by persona across worker processes; "
        "the exported artifacts are bit-identical to a serial run",
    )
    run.add_argument(
        "--workers", type=int, default=4, help="worker count for --parallel"
    )
    run.add_argument(
        "--backend",
        choices=("process", "thread"),
        default="process",
        help="executor backend for --parallel",
    )

    tables = sub.add_parser("tables", help="print headline tables")
    tables.add_argument("--seed", type=int, default=42)
    tables.add_argument("--small", action="store_true")

    policheck = sub.add_parser("policheck", help="run the §7 compliance analysis")
    policheck.add_argument("--seed", type=int, default=42)
    policheck.add_argument("--with-amazon-policy", action="store_true")

    sync = sub.add_parser("sync", help="run the §5.5 cookie-sync analysis")
    sync.add_argument("--seed", type=int, default=42)
    sync.add_argument("--small", action="store_true")

    audio = sub.add_parser("audio", help="run the §5.4 audio-ad study")
    audio.add_argument("--seed", type=int, default=42)
    audio.add_argument("--hours", type=float, default=6.0)

    defend = sub.add_parser("defend", help="run the §8.1 defense evaluations")
    defend.add_argument("--seed", type=int, default=42)

    sub.add_parser("version", help="print version")
    return parser


def _config(small: bool) -> ExperimentConfig:
    if not small:
        return ExperimentConfig()
    return ExperimentConfig(
        skills_per_persona=8,
        pre_iterations=2,
        post_iterations=6,
        crawl_sites=8,
        prebid_discovery_target=50,
        audio_hours=2.0,
    )


def _cmd_run(args) -> int:
    if args.parallel:
        from repro.core.parallel import run_parallel_experiment

        dataset = run_parallel_experiment(
            Seed(args.seed),
            _config(args.small),
            workers=args.workers,
            backend=args.backend,
        )
    else:
        dataset = run_experiment(Seed(args.seed), _config(args.small))
    counts = export_dataset(dataset, args.out)
    print(render_kv(counts, title=f"exported to {args.out}/"))
    if dataset.timings:
        total = dataset.timings.get("total", 0.0)
        print(f"campaign wall-clock: {total:.1f}s")
    return 0


def _cmd_tables(args) -> int:
    dataset = run_experiment(Seed(args.seed), _config(args.small))
    rows = [
        (r.persona, f"{r.summary.median:.3f}", f"{r.summary.mean:.3f}")
        for r in bid_summary_table(dataset)
    ]
    print(render_table(["persona", "median CPM", "mean CPM"], rows, title="Table 5"))
    print()
    rows = [
        (p, f"{r.p_value:.3f}", f"{r.effect_size:.3f}", "yes" if r.significant else "no")
        for p, r in significance_vs_vanilla(dataset).items()
    ]
    print(render_table(["persona", "p", "effect", "significant"], rows, title="Table 7"))
    sync = detect_cookie_syncing(dataset)
    print()
    print(
        render_kv(
            {
                "partners syncing with Amazon": sync.partner_count,
                "downstream third parties": sync.downstream_count,
            },
            title="§5.5",
        )
    )
    return 0


def _cmd_defend(args) -> int:
    from repro.alexa import AlexaCloud, AmazonAccount, EchoDevice, Marketplace
    from repro.data import categories as cat
    from repro.data.domains import PIHOLE_FILTER_TEXT, build_endpoint_registry
    from repro.data.skill_catalog import build_catalog
    from repro.defenses import BlockingRouter, evaluate_blocking
    from repro.netsim.router import Router
    from repro.orgmap.filterlists import FilterList
    from repro.util.clock import SimClock

    seed = Seed(args.seed)
    router = Router(build_endpoint_registry(), SimClock())
    catalog = build_catalog(seed)
    cloud = AlexaCloud(catalog, router, router.clock, seed)
    marketplace = Marketplace(catalog, cloud)
    blocking = BlockingRouter(router, FilterList.from_text(PIHOLE_FILTER_TEXT))
    account = AmazonAccount(email="defend@persona.example.com", persona="defend")
    device = EchoDevice("echo-defend", account, blocking, cloud, seed)
    skills = [s for s in catalog.top_skills(cat.FASHION, 50) if s.active]
    evaluation = evaluate_blocking(device, marketplace, skills, blocking)
    for spec in skills:
        device.background_sync(list(spec.amazon_endpoints))
    print(
        render_kv(
            {
                "skills functional": f"{evaluation.skills_functional}/{evaluation.skills_run}",
                "breakage rate": f"{100 * evaluation.breakage_rate:.1f}%",
                "tracking requests blocked": blocking.report.blocked_total,
            },
            title="selective blocking",
        )
    )
    return 0


def _cmd_policheck(args) -> int:
    from repro.core.compliance import analyze_compliance, policy_availability
    from repro.data import datatypes as dt

    config = ExperimentConfig(
        pre_iterations=0,
        post_iterations=1,
        crawl_sites=1,
        prebid_discovery_target=2,
        audio_hours=0.1,
    )
    dataset = run_experiment(Seed(args.seed), config)
    world = dataset.world
    availability = policy_availability(dataset)
    print(
        render_kv(
            {
                "skills": availability.total_skills,
                "policy links": availability.with_link,
                "downloadable": availability.downloadable,
                "generic (no Amazon mention)": availability.generic,
            },
            title="§7.1",
        )
    )
    compliance = analyze_compliance(
        dataset,
        world.corpus,
        world.org_resolver(),
        world.org_categories(),
        include_platform_policy=args.with_amazon_policy,
    )
    rows = [
        (
            data_type,
            counts.get("clear", 0),
            counts.get("vague", 0),
            counts.get("omitted", 0),
            counts.get("no policy", 0),
        )
        for data_type in dt.ALL_DATA_TYPES
        for counts in [compliance.datatype_table.get(data_type, {})]
    ]
    print()
    print(
        render_table(
            ["data type", "clear", "vague", "omitted", "no policy"],
            rows,
            title="Table 13",
        )
    )
    return 0


def _cmd_sync(args) -> int:
    dataset = run_experiment(Seed(args.seed), _config(args.small))
    analysis = detect_cookie_syncing(dataset)
    print(
        render_kv(
            {
                "sync events": len(analysis.events),
                "partners syncing with Amazon": analysis.partner_count,
                "Amazon outbound syncs": len(analysis.amazon_outbound_targets),
                "downstream third parties": analysis.downstream_count,
            },
            title="§5.5 cookie syncing",
        )
    )
    return 0


def _cmd_audio(args) -> int:
    from repro.adtech.audio import AudioAdServer
    from repro.core.adcontent import extract_audio_ads, transcribe_session
    from repro.data import categories as cat

    server = AudioAdServer(Seed(args.seed).derive("audio"))
    rows = []
    for skill in ("Amazon Music", "Spotify", "Pandora"):
        for persona in (cat.CONNECTED_CAR, cat.FASHION, cat.VANILLA):
            session = server.stream(skill, persona, hours=args.hours)
            brands = extract_audio_ads(transcribe_session(session))
            rows.append((skill, persona, len(brands)))
    print(render_table(["skill", "persona", "ads"], rows, title="§5.4 audio ads"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "version":
        print(__version__)
        return 0
    handlers = {
        "run": _cmd_run,
        "tables": _cmd_tables,
        "policheck": _cmd_policheck,
        "sync": _cmd_sync,
        "audio": _cmd_audio,
        "defend": _cmd_defend,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
