"""Fair-share campaign scheduler with a bounded worker budget.

The service runs campaigns for multiple tenants concurrently, but the
host has a fixed number of cores — so admission is governed by a
**worker-token budget**: a serial campaign costs one token, a parallel
campaign costs its worker count, and the sum of running jobs' tokens
never exceeds ``total_workers``.  Admission is strict FIFO over the
submission order: the head job waits until its tokens fit, and nothing
behind it can jump the queue.  That is the fairness guarantee — a small
tenant can never be starved by a stream of big campaigns (they queue
behind it), and a big campaign can never be starved by a stream of
small ones (they queue behind *it*).

Every admitted job runs on its own thread; the campaign itself may then
fan out into processes (``backend="process"``) inside its token
allowance.  Scheduler behaviour is observable through the ``service.*``
counters (:meth:`CampaignScheduler.counters`), including
``service.workers_peak`` — the high-water token usage, which a test can
assert never exceeded the budget.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.core.campaign import CampaignSpec, _DEFAULT_WORKERS
from repro.service.jobs import Job, JobStore

__all__ = ["CampaignScheduler", "worker_cost"]


def worker_cost(spec: CampaignSpec, total_workers: int) -> int:
    """Worker tokens one campaign consumes while running.

    Clamped to the budget so a campaign asking for more workers than
    the service owns still runs (alone) instead of queueing forever.
    """
    cost = (spec.workers or _DEFAULT_WORKERS) if spec.parallel else 1
    return max(1, min(cost, total_workers))


class CampaignScheduler:
    """FIFO job queue + worker-token admission over a :class:`JobStore`."""

    def __init__(self, store: JobStore, *, total_workers: int = 4) -> None:
        if total_workers < 1:
            raise ValueError(f"total_workers must be >= 1, got {total_workers}")
        self.store = store
        self.total_workers = total_workers
        self._cond = threading.Condition()
        self._queue: List[str] = []  # job ids, submission order
        self._active_tokens = 0
        self._active_threads: Dict[str, threading.Thread] = {}
        self._counters: Dict[str, int] = {
            "service.jobs_submitted": 0,
            "service.jobs_completed": 0,
            "service.jobs_partial": 0,
            "service.jobs_failed": 0,
            "service.jobs_cancelled": 0,
            "service.jobs_recovered": 0,
            "service.workers_active": 0,
            "service.workers_peak": 0,
        }
        self._stopping = False
        self._dispatcher: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Recover persisted jobs and start dispatching."""
        recovered = self.store.recover()
        with self._cond:
            for job in recovered:
                self._queue.append(job.id)
                self._counters["service.jobs_recovered"] += 1
            self._stopping = False
            self._cond.notify_all()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="campaign-dispatcher", daemon=True
        )
        self._dispatcher.start()

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop admitting jobs; optionally wait for running ones."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join()
            self._dispatcher = None
        if wait:
            for thread in list(self._active_threads.values()):
                thread.join()

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and nothing is running."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._queue and not self._active_threads,
                timeout=timeout,
            )

    # ------------------------------------------------------------------ #
    # Submission / cancellation
    # ------------------------------------------------------------------ #

    def submit(self, spec: CampaignSpec) -> Job:
        """Persist and enqueue a new campaign job."""
        job = self.store.submit(spec)
        with self._cond:
            self._queue.append(job.id)
            self._counters["service.jobs_submitted"] += 1
            self._cond.notify_all()
        return job

    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job if it has not started; returns the new state.

        A ``queued`` job is dequeued and marked ``cancelled``.  A
        ``running`` campaign is not interruptible (its worker processes
        own the work), so cancellation is recorded as a request and the
        job runs to its own terminal state.  Terminal jobs are
        unchanged.  Returns ``None`` for unknown ids.
        """
        job = self.store.get(job_id)
        if job is None:
            return None
        with self._cond:
            if job_id in self._queue and job.state == "queued":
                self._queue.remove(job_id)
                self._counters["service.jobs_cancelled"] += 1
                # Event before state: SSE tails close on the terminal
                # state and must not miss the cancellation event.
                job.events.emit("job.cancelled")
                job.update_state("cancelled")
                self._cond.notify_all()
                return "cancelled"
        if job.state == "running":
            job.set_flag("cancel_requested", True)
        return job.state

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def counters(self) -> Dict[str, int]:
        """A snapshot of the ``service.*`` counters."""
        with self._cond:
            counters = dict(self._counters)
            counters["service.jobs_queued"] = len(self._queue)
        return counters

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(lambda: self._stopping or self._admissible())
                if self._stopping:
                    return
                job_id = self._queue.pop(0)
                job = self.store.get(job_id)
                assert job is not None  # queue only ever holds known ids
                cost = worker_cost(job.spec, self.total_workers)
                self._active_tokens += cost
                self._counters["service.workers_active"] = self._active_tokens
                self._counters["service.workers_peak"] = max(
                    self._counters["service.workers_peak"], self._active_tokens
                )
                thread = threading.Thread(
                    target=self._run_job,
                    args=(job, cost),
                    name=f"campaign-{job.id}",
                    daemon=True,
                )
                self._active_threads[job.id] = thread
            thread.start()

    def _admissible(self) -> bool:
        """Strict FIFO: only the head job is considered for admission."""
        if not self._queue:
            return False
        job = self.store.get(self._queue[0])
        if job is None:
            self._queue.pop(0)
            return self._admissible()
        cost = worker_cost(job.spec, self.total_workers)
        return self._active_tokens + cost <= self.total_workers

    def _run_job(self, job: Job, cost: int) -> None:
        # Token release lives in a finally: a BaseException escaping
        # job.execute (KeyboardInterrupt delivered to a worker thread,
        # SystemExit from deep inside a backend) would otherwise leak the
        # job's worker tokens and wedge admission forever.
        state = "failed"
        try:
            state = job.execute()
        except Exception:  # noqa: BLE001 - job.execute already records errors
            pass
        finally:
            with self._cond:
                self._active_tokens -= cost
                self._counters["service.workers_active"] = self._active_tokens
                self._active_threads.pop(job.id, None)
                key = {
                    "complete": "service.jobs_completed",
                    "partial": "service.jobs_partial",
                }.get(state, "service.jobs_failed")
                self._counters[key] += 1
                self._cond.notify_all()
