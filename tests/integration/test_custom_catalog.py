"""Integration tests for auditing user-defined skills (custom catalogs)."""

import pytest

from repro.alexa import AVSEcho, AmazonAccount, EchoDevice
from repro.core.world import build_world
from repro.data import categories as cat
from repro.data import datatypes as dt
from repro.data.skill_catalog import PolicySpec, SkillCatalog, SkillSpec
from repro.policies.corpus import build_corpus
from repro.policies.policheck.analyzer import PolicheckAnalyzer
from repro.policies.policheck.extraction import extract_datatype_flows
from repro.util.rng import Seed


def make_custom_skill(**overrides) -> SkillSpec:
    defaults = dict(
        skill_id="skill-custom-test",
        name="Custom Test Skill",
        category=cat.HEALTH,
        vendor="Test Vendor",
        review_count=10,
        invocation_name="custom test skill",
        sample_utterances=("open custom test skill",),
        amazon_endpoints=("avs-alexa-16-na.amazon.com", "api.amazonalexa.com"),
        other_endpoints=("cdn.megaphone.fm",),
        data_types=(dt.VOICE_RECORDING, dt.CUSTOMER_ID),
    )
    defaults.update(overrides)
    return SkillSpec(**defaults)


@pytest.fixture
def custom_world():
    seed = Seed(55)
    skill = make_custom_skill()
    catalog = SkillCatalog([skill])
    world = build_world(seed, catalog=catalog)
    return world, skill


class TestCustomCatalog:
    def test_world_accepts_custom_catalog(self, custom_world):
        world, skill = custom_world
        assert world.catalog.by_id(skill.skill_id) is skill
        assert len(world.catalog) == 1

    def test_custom_skill_runs_end_to_end(self, custom_world):
        world, skill = custom_world
        account = AmazonAccount(email="c@example.com", persona="c")
        device = EchoDevice("echo-c", account, world.router, world.cloud, world.seed)
        world.marketplace.install(account, skill.skill_id)
        capture = world.router.start_capture("c", device_filter="echo-c")
        replies = device.run_skill_session(skill)
        world.router.stop_capture(capture)
        assert any(r is not None for r in replies)
        hosts = {p.sni for p in capture if p.sni}
        assert "cdn.megaphone.fm" in hosts

    def test_custom_skill_data_flows_extracted(self, custom_world):
        world, skill = custom_world
        account = AmazonAccount(email="a@example.com", persona="a")
        avs = AVSEcho("avs-c", account, world.router, world.cloud, world.seed)
        world.marketplace.install(account, skill.skill_id)
        avs.run_skill_session(skill)
        flows = extract_datatype_flows(avs.plaintext_log)
        observed = {f.data_type for f in flows if f.skill_id == skill.skill_id}
        assert observed == {dt.VOICE_RECORDING, dt.CUSTOMER_ID}

    def test_custom_skill_policy_analyzed(self):
        seed = Seed(56)
        skill = make_custom_skill(
            policy=PolicySpec(
                has_link=True,
                downloadable=True,
                datatype_disclosures={dt.VOICE_RECORDING: "clear"},
            )
        )
        catalog = SkillCatalog([skill])
        corpus = build_corpus(catalog, seed)
        analyzer = PolicheckAnalyzer(corpus)
        from repro.policies.policheck.extraction import DataFlow

        voice = analyzer.classify_datatype_flow(
            DataFlow(skill.skill_id, dt.VOICE_RECORDING, "Amazon Technologies, Inc.")
        )
        customer = analyzer.classify_datatype_flow(
            DataFlow(skill.skill_id, dt.CUSTOMER_ID, "Amazon Technologies, Inc.")
        )
        # A noiseless-by-luck clear may degrade to omitted under phrasing
        # noise; either way the undisclosed customer id stays omitted.
        assert voice.classification in {"clear", "omitted"}
        assert customer.classification == "omitted"

    def test_endpoint_outside_domain_catalog_degrades(self):
        """A custom skill pointing at an unknown domain fails to fetch but
        keeps working (the device swallows dead endpoints)."""
        seed = Seed(57)
        skill = make_custom_skill(other_endpoints=("api.unknown-startup.io",))
        world = build_world(seed, catalog=SkillCatalog([skill]))
        account = AmazonAccount(email="u@example.com", persona="u")
        device = EchoDevice("echo-u", account, world.router, world.cloud, seed)
        world.marketplace.install(account, skill.skill_id)
        replies = device.run_skill_session(skill)
        assert any(r is not None for r in replies)
