"""Dataset and results export.

The paper commits to releasing "all of our code and data".  This module
produces that release: the raw collected artifacts (bids, ads, flows,
sync events, DSAR interests, policy stats) as CSV files, and the analysis
results as a JSON summary — everything needed to re-analyze the campaign
without re-running it.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.bids import bid_summary_table, common_slots, significance_vs_vanilla
from repro.core.compliance import policy_availability
from repro.core.experiment import AuditDataset
from repro.core.profiling import analyze_profiling
from repro.core.syncing import detect_cookie_syncing

__all__ = ["export_dataset", "export_summary", "EXPORT_FILES"]

EXPORT_FILES = (
    "bids.csv",
    "ads.csv",
    "skill_flows.csv",
    "sync_events.csv",
    "dsar_interests.csv",
    "audio_ads.csv",
    "summary.json",
)


def _write_csv(path: Path, header: List[str], rows) -> int:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        count = 0
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def export_dataset(dataset: AuditDataset, out_dir: Union[str, Path]) -> Dict[str, int]:
    """Write the raw artifacts to ``out_dir``; returns row counts per file."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    counts: Dict[str, int] = {}

    counts["bids.csv"] = _write_csv(
        out / "bids.csv",
        ["persona", "iteration", "site", "slot", "bidder", "cpm", "interacted"],
        (
            (b.persona, b.iteration, b.site, b.slot_id, b.bidder, b.cpm, b.interacted)
            for a in dataset.personas.values()
            for b in a.bids
        ),
    )

    counts["ads.csv"] = _write_csv(
        out / "ads.csv",
        ["persona", "iteration", "site", "slot", "advertiser", "product", "source"],
        (
            (
                ad.persona,
                ad.iteration,
                ad.site,
                ad.slot_id,
                ad.creative.advertiser,
                ad.creative.product,
                ad.creative.source,
            )
            for a in dataset.personas.values()
            for ad in a.ads
        ),
    )

    def flow_rows():
        for artifacts in dataset.interest_personas:
            for skill_id, capture in artifacts.skill_captures.items():
                dns = capture.dns_table()
                for flow in capture.flows():
                    if flow.key[3] == "dns":
                        continue
                    domain = dns.domain_for_ip(flow.remote_ip) or flow.sni or ""
                    yield (
                        artifacts.persona.name,
                        skill_id,
                        domain,
                        flow.remote_ip,
                        flow.remote_port,
                        len(flow.packets),
                        flow.total_bytes,
                    )

    counts["skill_flows.csv"] = _write_csv(
        out / "skill_flows.csv",
        ["persona", "skill_id", "domain", "remote_ip", "port", "packets", "bytes"],
        flow_rows(),
    )

    sync = detect_cookie_syncing(dataset)
    counts["sync_events.csv"] = _write_csv(
        out / "sync_events.csv",
        ["persona", "source", "destination", "uid"],
        ((e.persona, e.source, e.destination_host, e.uid) for e in sync.events),
    )

    profiling = analyze_profiling(dataset)
    counts["dsar_interests.csv"] = _write_csv(
        out / "dsar_interests.csv",
        ["persona", "request", "file_missing", "interests"],
        (
            (
                obs.persona,
                obs.request_label,
                obs.file_missing,
                "; ".join(obs.interests or ()),
            )
            for obs in profiling.observations
        ),
    )

    counts["audio_ads.csv"] = _write_csv(
        out / "audio_ads.csv",
        ["persona", "skill", "start_seconds", "brand"],
        (
            (s.persona, s.skill_name, seg.start, seg.label)
            for a in dataset.personas.values()
            for s in a.audio_sessions
            for seg in s.ad_segments
        ),
    )

    summary = export_summary(dataset)
    (out / "summary.json").write_text(json.dumps(summary, indent=2, sort_keys=True))
    counts["summary.json"] = 1
    return counts


def export_summary(dataset: AuditDataset) -> dict:
    """Headline analysis results as a JSON-serializable mapping."""
    sync = detect_cookie_syncing(dataset)
    availability = policy_availability(dataset)
    slots = common_slots(dataset)
    significance = {
        persona: {
            "p_value": result.p_value,
            "effect_size": result.effect_size,
            "significant": result.significant,
        }
        for persona, result in significance_vs_vanilla(dataset).items()
    }
    return {
        "personas": sorted(dataset.personas),
        "common_ad_slots": len(slots),
        "bid_summaries": {
            row.persona: {
                "median": row.summary.median,
                "mean": row.summary.mean,
                "max": row.summary.maximum,
                "n": row.summary.n,
            }
            for row in bid_summary_table(dataset)
        },
        "significance_vs_vanilla": significance,
        "cookie_sync": {
            "partners": sync.partner_count,
            "downstream": sync.downstream_count,
            "amazon_outbound": len(sync.amazon_outbound_targets),
        },
        "policy_availability": {
            "total_skills": availability.total_skills,
            "with_link": availability.with_link,
            "downloadable": availability.downloadable,
            "mention_amazon": availability.mention_amazon,
            "generic": availability.generic,
            "link_amazon_policy": availability.link_amazon_policy,
        },
    }
