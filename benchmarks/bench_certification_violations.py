"""§4.2: six certified non-streaming skills contact advertising/tracking
services — a potential Alexa advertising-policy violation that the
certification process never flagged."""

from repro.alexa.certification import CertificationChecker, audit_certified_skills
from repro.core.report import render_table
from repro.core.traffic import analyze_traffic


def bench_certification_violations(benchmark, dataset, world, vendor_by_skill):
    traffic = analyze_traffic(
        dataset, world.org_resolver(), world.filter_list, vendor_by_skill
    )
    observed = {
        skill.skill_id: list(skill.domains)
        for skill in traffic.per_skill
    }
    certifications = CertificationChecker().review_catalog(world.catalog)

    violations = benchmark.pedantic(
        audit_certified_skills,
        args=(
            world.catalog.active_skills,
            observed,
            world.filter_list,
            certifications,
        ),
        rounds=2,
        iterations=1,
    )

    rows = [
        (world.catalog.by_id(v.skill_id).name, ", ".join(v.evidence))
        for v in violations
    ]
    print()
    print(
        render_table(
            ["certified non-streaming skill", "A&T services observed"],
            rows,
            title="§4.2 advertising-policy violations",
        )
    )

    names = {world.catalog.by_id(v.skill_id).name for v in violations}
    # Paper: six such skills, Genesis and Men's Finest named explicitly,
    # all certified, none flagged.
    assert len(names) == 6
    assert {"Genesis", "Men's Finest Daily Fashion Tip"} <= names
    for violation in violations:
        assert certifications[violation.skill_id].certified
