"""Tests for the statistics module, cross-checked against SciPy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.core.stats import (
    effect_size_label,
    mann_whitney_u,
    rank_biserial,
    summarize,
)


class TestMannWhitney:
    def test_matches_scipy_greater(self):
        rng = np.random.default_rng(1)
        x = rng.lognormal(-2.3, 1.5, 40)
        y = rng.lognormal(-3.5, 1.8, 40)
        ours = mann_whitney_u(x, y, alternative="greater")
        theirs = scipy_stats.mannwhitneyu(x, y, alternative="greater")
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)
        assert ours.u_statistic == pytest.approx(theirs.statistic)

    def test_matches_scipy_two_sided(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, 35)
        y = rng.normal(0.4, 1, 30)
        ours = mann_whitney_u(x, y, alternative="two-sided")
        theirs = scipy_stats.mannwhitneyu(x, y, alternative="two-sided")
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_matches_scipy_less(self):
        rng = np.random.default_rng(3)
        x = rng.normal(0, 1, 25)
        y = rng.normal(0.5, 1, 25)
        ours = mann_whitney_u(x, y, alternative="less")
        theirs = scipy_stats.mannwhitneyu(x, y, alternative="less")
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_ties_handled(self):
        x = [1.0, 1.0, 2.0, 3.0, 3.0, 4.0, 5.0, 5.0, 6.0, 7.0]
        y = [1.0, 2.0, 2.0, 3.0, 4.0, 4.0, 5.0, 6.0, 6.0, 6.0]
        ours = mann_whitney_u(x, y, alternative="two-sided")
        theirs = scipy_stats.mannwhitneyu(x, y, alternative="two-sided")
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_small_samples_use_exact(self):
        x = [3.0, 4.0, 5.0]
        y = [1.0, 2.0]
        ours = mann_whitney_u(x, y, alternative="greater")
        theirs = scipy_stats.mannwhitneyu(x, y, alternative="greater", method="exact")
        assert ours.p_value == pytest.approx(theirs.pvalue)

    def test_clear_dominance_significant(self):
        x = list(range(100, 140))
        y = list(range(40))
        result = mann_whitney_u(x, y, alternative="greater")
        assert result.significant
        assert result.effect_size == pytest.approx(1.0)

    def test_identical_samples_not_significant(self):
        x = [float(i) for i in range(30)]
        result = mann_whitney_u(x, x, alternative="greater")
        assert not result.significant
        assert abs(result.effect_size) < 0.01

    def test_two_sided_at_exact_null_is_one(self):
        """Regression: at ``U == mean`` the continuity correction must
        point toward the null.  The old ``copysign(0.5, u1 - mean_u)``
        took the sign of ``+0.0`` and over-corrected, reporting p < 1
        for identical tied samples where scipy reports exactly 1.0."""
        x = [float(i) for i in range(1, 9)]  # ties force the asymptotic path
        ours = mann_whitney_u(x, x, alternative="two-sided")
        theirs = scipy_stats.mannwhitneyu(x, x, alternative="two-sided")
        assert theirs.pvalue == 1.0
        assert ours.p_value == 1.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])

    def test_invalid_alternative_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([1.0], [2.0], alternative="sideways")


#: Drawing from a small discrete pool makes midrank ties common; the
#: float pool keeps samples untied.  Sizes >= 8 pin the asymptotic
#: (continuity-corrected normal) path on both sides of the comparison.
_tied_sample = st.lists(
    st.sampled_from([1.0, 2.0, 3.0, 4.0, 5.0]), min_size=8, max_size=25
)
_untied_pool = [round(0.07 * k + 0.013, 6) for k in range(200)]


class TestMannWhitneyProperty:
    @settings(max_examples=150, deadline=None)
    @given(
        x=_tied_sample,
        y=_tied_sample,
        alternative=st.sampled_from(["greater", "less", "two-sided"]),
    )
    def test_tied_samples_match_scipy_asymptotic(self, x, y, alternative):
        if len(set(x) | set(y)) < 2:
            return  # zero-variance degenerate: scipy's z is undefined
        ours = mann_whitney_u(x, y, alternative=alternative)
        theirs = scipy_stats.mannwhitneyu(
            x, y, alternative=alternative, method="asymptotic"
        )
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9, abs=1e-12)
        assert ours.u_statistic == pytest.approx(theirs.statistic)

    @settings(max_examples=100, deadline=None)
    @given(
        data=st.data(),
        alternative=st.sampled_from(["greater", "less", "two-sided"]),
    )
    def test_untied_samples_match_scipy_asymptotic(self, data, alternative):
        # Sampling distinct values without replacement guarantees no ties.
        pool = data.draw(
            st.permutations(_untied_pool).map(lambda p: p[:50])
        )
        n1 = data.draw(st.integers(min_value=9, max_value=25))
        x, y = pool[:n1], pool[n1:]
        ours = mann_whitney_u(x, y, alternative=alternative)
        theirs = scipy_stats.mannwhitneyu(
            x, y, alternative=alternative, method="asymptotic"
        )
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9, abs=1e-12)


class TestRankBiserial:
    def test_bounds(self):
        assert rank_biserial(0, 10, 10) == -1.0
        assert rank_biserial(100, 10, 10) == 1.0
        assert rank_biserial(50, 10, 10) == 0.0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            rank_biserial(5, 0, 10)


class TestEffectSizeLabels:
    @pytest.mark.parametrize(
        "value,label",
        [
            (0.05, "negligible"),
            (0.2, "small"),
            (0.35, "medium"),
            (0.5, "large"),
            (-0.5, "large"),  # magnitude-based
        ],
    )
    def test_paper_banding(self, value, label):
        assert effect_size_label(value) == label


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 10.0])
        assert summary.median == 2.5
        assert summary.mean == 4.0
        assert summary.n == 4
        assert summary.maximum == 10.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
