"""Seed-robustness of the headline statistical pattern (Table 7).

The six personas the paper finds significant must be significant under
*any* seed — that part of the result is an effect-size property, not a
sampling accident.  The weak trio (Smart Home, Wine & Beverages, Health
& Fitness) sits near the 0.05 boundary by construction (paper p-values
0.075–0.149), so individual seeds may flip one or two of them; what must
hold is that they are never *all* significant.

Marked slow: each seed runs the full campaign (~20 s).
"""

import pytest

from repro.core.bids import significance_vs_vanilla
from repro.core.campaign import run_campaign
from repro.data import categories as cat
from repro.util.rng import Seed

STRONG = {
    cat.CONNECTED_CAR,
    cat.DATING,
    cat.FASHION,
    cat.PETS,
    cat.RELIGION,
    cat.NAVIGATION,
}
WEAK = {cat.SMART_HOME, cat.WINE, cat.HEALTH}


@pytest.mark.slow
@pytest.mark.parametrize("seed_root", [43, 44])
def test_significance_pattern_robust_across_seeds(seed_root):
    dataset = run_campaign(seed=Seed(seed_root))
    results = significance_vs_vanilla(dataset)
    significant = {p for p, r in results.items() if r.significant}
    assert STRONG <= significant
    assert len(significant & WEAK) <= 2
    # Effect-size ordering mostly holds: at n≈38 one weak persona can draw
    # an outlier sample, but at least two of the three stay below the
    # strong six's minimum.
    strong_min = min(results[p].effect_size for p in STRONG)
    below = sum(1 for p in WEAK if results[p].effect_size < strong_min)
    assert below >= 2
