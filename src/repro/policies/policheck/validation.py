"""PoliCheck validation study (§7.2.3).

Visually-inspect-and-compare, simulated: a human coder labels the flows
of 100 policy-bearing skills (the coder reads the generated policy, so
their labels equal the generation ground truth, up to a small
disagreement rate), and PoliCheck's predictions are scored against those
labels with multi-class micro/macro precision, recall, and F1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.policies.corpus import PolicyCorpus
from repro.policies.policheck.analyzer import Disclosure
from repro.util.rng import Seed

__all__ = ["ValidationReport", "human_code_flows", "score_multiclass", "CODER_NOISE_RATE"]

#: Human coders occasionally read a disclosure *into* text the term
#: matcher cannot see (they resolve pronouns, world knowledge, catch-all
#: clauses), or promote a vague phrase to a clear one.  This inflates
#: analyzer false negatives — which is why the paper's macro precision
#: (93.96%) exceeds its macro recall (77.85%).
CODER_NOISE_RATE = 0.13

#: Directed coder disagreements: coder's label given the written truth.
_CODER_DRIFT = {"omitted": "vague", "vague": "clear", "clear": "vague"}

_CLASSES = ("clear", "vague", "omitted")


@dataclass(frozen=True)
class ValidationReport:
    """Micro/macro multi-class scores of PoliCheck vs the human coder."""

    n_flows: int
    micro_precision: float
    micro_recall: float
    micro_f1: float
    macro_precision: float
    macro_recall: float
    macro_f1: float
    confusion: Dict[Tuple[str, str], int]  # (truth, predicted) -> count


def human_code_flows(
    disclosures: Sequence[Disclosure],
    corpus: PolicyCorpus,
    seed: Seed,
) -> List[str]:
    """The human coder's label for each flow (same order as input)."""
    rng = seed.rng("validation", "coder")
    labels: List[str] = []
    for disclosure in disclosures:
        document = corpus.get(disclosure.flow.skill_id)
        if document is None:
            labels.append("no policy")
            continue
        if disclosure.flow.data_type is not None:
            truth = document.truth_datatypes.get(disclosure.flow.data_type, "omitted")
        else:
            truth = document.truth_endpoints.get(disclosure.flow.entity, "omitted")
        if rng.random() < CODER_NOISE_RATE:
            truth = _CODER_DRIFT[truth]
        labels.append(truth)
    return labels


def score_multiclass(
    truth: Sequence[str], predicted: Sequence[str]
) -> ValidationReport:
    """Micro/macro-averaged multi-class P/R/F1 over the three disclosure
    classes, following the methodology of [84]."""
    if len(truth) != len(predicted):
        raise ValueError("truth and predicted must align")
    pairs = [
        (t, p) for t, p in zip(truth, predicted) if t != "no policy" and p != "no policy"
    ]
    confusion: Dict[Tuple[str, str], int] = {}
    for t, p in pairs:
        confusion[(t, p)] = confusion.get((t, p), 0) + 1

    def precision_recall(klass: str) -> Tuple[float, float]:
        tp = confusion.get((klass, klass), 0)
        fp = sum(c for (t, p), c in confusion.items() if p == klass and t != klass)
        fn = sum(c for (t, p), c in confusion.items() if t == klass and p != klass)
        precision = tp / (tp + fp) if tp + fp else 1.0
        recall = tp / (tp + fn) if tp + fn else 1.0
        return precision, recall

    per_class = {klass: precision_recall(klass) for klass in _CLASSES}
    macro_p = sum(p for p, _ in per_class.values()) / len(_CLASSES)
    macro_r = sum(r for _, r in per_class.values()) / len(_CLASSES)
    macro_f1 = (
        2 * macro_p * macro_r / (macro_p + macro_r) if macro_p + macro_r else 0.0
    )
    correct = sum(confusion.get((k, k), 0) for k in _CLASSES)
    total = len(pairs)
    micro = correct / total if total else 1.0
    return ValidationReport(
        n_flows=total,
        micro_precision=micro,
        micro_recall=micro,
        micro_f1=micro,
        macro_precision=macro_p,
        macro_recall=macro_r,
        macro_f1=macro_f1,
        confusion=confusion,
    )
