"""The Alexa cloud: voice routing, skill mediation, and interaction logs.

Amazon sits between users and skills (§4.1): every utterance is first
interpreted by the cloud, which then invokes the skill backend and relays
directives to the device.  This mediation is why ~99% of skill traffic
goes to Amazon endpoints — and why Amazon has "the best vantage point to
track user activity".

The cloud also owns the interaction log that feeds the interest profiler
(§6.1) and the account/install state used by the marketplace and DSAR
portal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.alexa.account import AmazonAccount
from repro.alexa.skill_backend import SkillBackend, SkillResult
from repro.alexa.voice import VoiceFrontend
from repro.data.domains import ALL_DOMAINS, AMAZON_ORG
from repro.data.skill_catalog import STREAMING_SKILLS, SkillCatalog, SkillSpec
from repro.netsim.http import HttpRequest, HttpResponse
from repro.netsim.router import Router
from repro.util.clock import SimClock
from repro.util.rng import Seed

__all__ = ["AlexaCloud", "AccountState", "InteractionRecord", "VOICE_ENDPOINT"]

#: The AVS voice-pipeline endpoint devices talk to.
VOICE_ENDPOINT = "avs-alexa-16-na.amazon.com"


@dataclass(frozen=True)
class InteractionRecord:
    """One logged utterance, as retained by Amazon."""

    timestamp: float
    customer_id: str
    transcript: str
    skill_id: Optional[str]
    skill_category: Optional[str]
    epoch: int


@dataclass
class AccountState:
    """Server-side state for one Amazon account."""

    account: AmazonAccount
    installed: Dict[str, SkillSpec] = field(default_factory=dict)
    interactions: List[InteractionRecord] = field(default_factory=list)
    #: 0 = nothing yet / install-only; advanced after each interaction wave.
    interaction_epoch: int = 0
    ever_installed: List[str] = field(default_factory=list)
    #: skill id -> whether its linked-only functionality is available
    #: (True for skills that need no external account).
    linked: Dict[str, bool] = field(default_factory=dict)


class AlexaCloud:
    """Amazon's server side, registered on the router for every endpoint."""

    def __init__(
        self,
        catalog: SkillCatalog,
        router: Router,
        clock: SimClock,
        seed: Seed,
    ) -> None:
        self.catalog = catalog
        self.router = router
        self.clock = clock
        self.voice = VoiceFrontend(seed.derive("cloud"))
        self._seed = seed
        self._accounts: Dict[str, AccountState] = {}
        self._backends: Dict[str, SkillBackend] = {}
        self.redirected_utterances = 0
        self._streaming_by_name = {s.name.lower(): s for s in STREAMING_SKILLS}
        self._register_services()

    # ------------------------------------------------------------------ #
    # World wiring
    # ------------------------------------------------------------------ #

    def _register_services(self) -> None:
        """Install handlers for every domain in the simulated Internet."""
        for spec in ALL_DOMAINS:
            if spec.domain == VOICE_ENDPOINT:
                self.router.register_service(spec.domain, self._handle_voice_request)
            elif spec.organization == AMAZON_ORG:
                self.router.register_service(spec.domain, self._handle_amazon_request)
            else:
                self.router.register_service(
                    spec.domain, _make_content_handler(spec.domain)
                )

    # ------------------------------------------------------------------ #
    # Accounts & install state
    # ------------------------------------------------------------------ #

    def register_account(self, account: AmazonAccount) -> AccountState:
        state = self._accounts.get(account.customer_id)
        if state is None:
            state = AccountState(account=account)
            self._accounts[account.customer_id] = state
        return state

    def account_state(self, customer_id: str) -> AccountState:
        state = self._accounts.get(customer_id)
        if state is None:
            raise KeyError(f"unknown customer: {customer_id}")
        return state

    def install_skill(
        self, customer_id: str, skill_id: str, linked: bool = True
    ) -> SkillSpec:
        """Install + enable a skill on the account (companion-app flow)."""
        state = self.account_state(customer_id)
        spec = self.catalog.by_id(skill_id)
        if spec.fails_to_load:
            raise RuntimeError(f"skill failed to load: {spec.name}")
        state.installed[skill_id] = spec
        state.linked[skill_id] = linked
        if skill_id not in state.ever_installed:
            state.ever_installed.append(skill_id)
        return spec

    def uninstall_skill(self, customer_id: str, skill_id: str) -> None:
        self.account_state(customer_id).installed.pop(skill_id, None)

    def advance_epoch(self, customer_id: str) -> int:
        """Mark the end of an interaction wave (used by DSAR timing)."""
        state = self.account_state(customer_id)
        state.interaction_epoch += 1
        return state.interaction_epoch

    # ------------------------------------------------------------------ #
    # Voice pipeline
    # ------------------------------------------------------------------ #

    def _handle_voice_request(self, request: HttpRequest) -> HttpResponse:
        """AVS endpoint: transcribe, route, and return skill directives."""
        body = request.body
        if body.get("event") != "recognize":
            return HttpResponse(status=200, body={"ok": True})
        customer_id = body.get("customer_id", "")
        if customer_id not in self._accounts:
            return HttpResponse(status=403, body={"error": "unknown customer"})
        command = body.get("voice_recording", "")
        allow_streaming = bool(body.get("allow_streaming", True))

        transcription = self.voice.transcribe(command, speaker=customer_id)
        state = self._accounts[customer_id]
        spec = self._route(transcription.text, state)
        linked = state.linked.get(spec.skill_id, True) if spec else True
        result = self._invoke(
            spec, transcription.text, customer_id, allow_streaming, linked
        )

        state.interactions.append(
            InteractionRecord(
                timestamp=self.clock.now,
                customer_id=customer_id,
                transcript=transcription.text,
                skill_id=spec.skill_id if spec and result.handled else None,
                skill_category=spec.category if spec and result.handled else None,
                epoch=state.interaction_epoch,
            )
        )
        return HttpResponse(
            status=200,
            body={
                "transcript": transcription.text,
                "handled_by": result.skill_id if result.handled else "alexa",
                "directives": [
                    {
                        "kind": d.kind,
                        "url": d.url,
                        "speech": d.speech,
                        "data": dict(d.data),
                    }
                    for d in result.directives
                ],
            },
        )

    def _route(self, transcript: str, state: AccountState) -> Optional[SkillSpec]:
        """Match a transcript to an installed (or streaming) skill."""
        text = transcript.lower()
        for name, spec in self._streaming_by_name.items():
            if name in text:
                return spec
        candidates = [
            spec
            for spec in state.installed.values()
            if spec.invocation_name in text
        ]
        if not candidates:
            return None
        # Longest invocation-name match wins, mirroring Alexa's resolver.
        return max(candidates, key=lambda s: len(s.invocation_name))

    def _invoke(
        self,
        spec: Optional[SkillSpec],
        transcript: str,
        customer_id: str,
        allow_streaming: bool,
        account_linked: bool = True,
    ) -> SkillResult:
        if spec is None:
            return SkillResult(skill_id="alexa", handled=False)
        backend = self._backends.get(spec.skill_id)
        if backend is None:
            backend = SkillBackend(spec, self._seed)
            self._backends[spec.skill_id] = backend
        result = backend.invoke(
            transcript, customer_id, allow_streaming, account_linked=account_linked
        )
        if result.redirected_to_alexa:
            self.redirected_utterances += 1
        return result

    # ------------------------------------------------------------------ #
    # Generic Amazon endpoints
    # ------------------------------------------------------------------ #

    @staticmethod
    def _handle_amazon_request(request: HttpRequest) -> HttpResponse:
        return HttpResponse(status=200, body={"ok": True})


def _make_content_handler(domain: str):
    """Third-party/vendor content endpoint: 200 with an asset reference."""

    def handler(request: HttpRequest) -> HttpResponse:
        return HttpResponse(
            status=200,
            body={"content": f"asset from {domain}", "path": request.path},
        )

    return handler
