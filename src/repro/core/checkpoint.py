"""Crash-safe shard checkpoint journal.

The paper's measurement campaign ran for months against live
infrastructure, where partial failure — a crawler OOM, a hung vantage
point, a killed process — is the normal case.  The reproduction's
parallel runner originally shared that fragility: one lost worker
discarded every completed persona shard.  This module is the durability
layer underneath the shard supervisor (:mod:`repro.core.parallel`): each
completed :class:`~repro.core.parallel.ShardResult` is published to an
on-disk **journal** keyed by seed root, config fingerprint, and the
shard plan, so a campaign killed mid-run resumes from its completed
shards and — because shard artifacts are seed-deterministic — produces
exports byte-identical to an uninterrupted run.

Durability rules:

* **Atomic publish.**  Every journal write goes through
  :func:`atomic_write_bytes` (write temp → flush → ``fsync`` →
  ``os.replace``), so a crash mid-write never leaves a half-written
  payload at a journal key.  The same helper backs the dataset cache
  (:mod:`repro.core.cache`).
* **Schema-stamped entries.**  Each shard payload records the journal
  schema version, the seed root, the config fingerprint, the shard-plan
  digest, and the shard's persona names.  A stale or foreign entry —
  different campaign, different plan, older schema — never resumes; it
  raises :class:`CorruptShardError` and the supervisor quarantines it
  (rename to ``*.corrupt``) and recomputes.
* **Run-level manifest.**  ``journal.json`` records the journal key,
  the shard plan, per-shard attempt history, and the final status
  (``complete`` / ``partial`` / ``failed``), so an operator — or a CI
  chaos job — can audit what a crashed run left behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.iosim import (
    DEFAULT_STORAGE_RETRY,
    current_storage_faults,
    is_enospc,
    read_bytes as _seam_read_bytes,
    transient_storage_error,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CorruptShardError",
    "ShardJournal",
    "atomic_write_bytes",
    "fsync_dir",
    "quarantine_path",
    "shard_plan_digest",
]

#: Bump whenever the journal payload layout changes shape; stale entries
#: fail validation and are recomputed rather than resumed.
CHECKPOINT_SCHEMA_VERSION = 1

_MANIFEST_NAME = "journal.json"


class CheckpointError(RuntimeError):
    """The journal cannot serve this run (missing or mismatched key)."""


class CorruptShardError(CheckpointError):
    """A journal entry exists but is unreadable or fails validation."""


def fsync_dir(path: Union[str, Path]) -> None:
    """Best-effort fsync of a directory.

    ``os.replace`` publishes a name by mutating the parent directory;
    until that directory's own metadata is flushed, a power loss can
    silently drop the dirent even though the file's blocks were fsynced.
    Best-effort because some filesystems refuse ``O_RDONLY`` on
    directories — durability degrades there, correctness does not.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _inject_write_fault(decision, plan, target: Path, handle=None, data=b"") -> None:
    """Raise (or sleep for) the injected fault at the right point of the
    write sequence; no-op for stages the decision does not target."""
    import errno as _errno

    kind = decision.kind
    plan.record(f"storage.faults.injected.{kind}")
    if kind == "slow":
        time.sleep(decision.seconds)
    elif kind == "enospc":
        raise OSError(
            _errno.ENOSPC, f"injected: no space left on device ({target.name})"
        )
    elif kind == "eio":
        raise OSError(_errno.EIO, f"injected: write I/O error ({target.name})")
    elif kind == "torn":
        handle.write(data[: int(len(data) * decision.fraction)])
        handle.flush()
        raise OSError(
            _errno.EIO, f"injected: torn write after partial payload ({target.name})"
        )
    elif kind == "fsync":
        raise OSError(_errno.EIO, f"injected: fsync failure ({target.name})")
    elif kind == "rename":
        raise OSError(_errno.EIO, f"injected: rename failure ({target.name})")


def _atomic_write_attempt(target: Path, data: bytes, decision, plan) -> None:
    """One temp → fsync → rename → dir-fsync publish attempt."""
    if decision is not None and decision.kind in ("slow", "enospc", "eio"):
        _inject_write_fault(decision, plan, target)
        decision = None if decision.kind == "slow" else decision
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            if decision is not None and decision.kind == "torn":
                _inject_write_fault(decision, plan, target, handle=handle, data=data)
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
            if decision is not None and decision.kind == "fsync":
                _inject_write_fault(decision, plan, target)
        if decision is not None and decision.kind == "rename":
            _inject_write_fault(decision, plan, target)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_dir(target.parent)


def atomic_write_bytes(
    path: Union[str, Path],
    data: bytes,
    *,
    component: str = "storage",
    op: str = "write",
) -> None:
    """Write ``data`` to ``path`` atomically: temp → fsync → rename →
    parent-dir fsync.

    A reader can never observe a partial file at ``path`` — it sees
    either the previous content or the full new content.  The ``fsync``
    before the rename is what makes the journal crash-safe: without it a
    power loss could publish a name pointing at unwritten blocks; the
    directory fsync after it is what keeps the published *name* from
    vanishing in the same crash.

    This is the storage fault seam for writes: when a
    :class:`~repro.core.iosim.StorageFaultPlan` is installed, each
    attempt draws a decision keyed by ``(component, op)``.  Transient
    faults (EIO, fsync, rename, torn temp write) are retried under
    :data:`~repro.core.iosim.DEFAULT_STORAGE_RETRY` with capped backoff
    on the host clock; ``ENOSPC`` propagates immediately — a full disk
    does not heal on retry, the campaign layer degrades instead.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    plan = current_storage_faults()
    policy = DEFAULT_STORAGE_RETRY
    for attempt in range(1, policy.max_attempts + 1):
        decision = plan.decide(component, op) if plan is not None else None
        if decision is not None and decision.kind == "corrupt_read":
            decision = None  # read-only fault kind; draw still consumed
        try:
            _atomic_write_attempt(target, data, decision, plan)
        except OSError as exc:
            if plan is not None and is_enospc(exc):
                plan.record("storage.enospc")
            if not transient_storage_error(exc):
                raise
            if attempt >= policy.max_attempts:
                if plan is not None:
                    plan.record("storage.retry_exhausted")
                raise
            if plan is not None:
                plan.record("storage.retries")
            time.sleep(policy.backoff(attempt))
        else:
            return


def quarantine_path(path: Union[str, Path]) -> Optional[Path]:
    """Move a corrupt artifact to ``<name>.corrupt`` — never delete it,
    never leave it under a live name.

    The rename is followed by a parent-directory fsync so a crash right
    after quarantine cannot resurrect the corrupt name.  Best-effort:
    returns the quarantine path, or ``None`` when the rename failed
    (e.g. the artifact vanished concurrently).
    """
    source = Path(path)
    target = source.with_name(source.name + ".corrupt")
    try:
        os.replace(source, target)
    except OSError:
        return None
    fsync_dir(source.parent)
    plan = current_storage_faults()
    if plan is not None:
        plan.record("storage.quarantined")
    return target


def shard_plan_digest(shard_plan: Sequence[Sequence[str]]) -> str:
    """Stable digest of a shard plan (persona names per shard, in order)."""
    payload = json.dumps([list(names) for names in shard_plan])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ShardJournal:
    """Atomic per-shard result journal for one campaign execution.

    A journal is bound to a **key**: ``(seed_root, config_fingerprint,
    shard_plan)``.  Entries written under a different key never load —
    resuming a journal against the wrong campaign raises instead of
    silently merging foreign artifacts.
    """

    def __init__(
        self,
        root: Union[str, Path],
        seed_root: int,
        config_fingerprint: str,
        shard_plan: Sequence[Sequence[str]],
    ) -> None:
        self.root = Path(root)
        self.seed_root = seed_root
        self.config_fingerprint = config_fingerprint
        self.shard_plan: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(names) for names in shard_plan
        )
        if not self.shard_plan:
            raise ValueError("shard plan must not be empty")
        self.plan_digest = shard_plan_digest(self.shard_plan)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #

    def shard_path(self, shard_index: int) -> Path:
        return self.root / f"shard-{shard_index:04d}.pkl"

    def error_path(self, shard_index: int) -> Path:
        return self.root / f"shard-{shard_index:04d}.error"

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    # ------------------------------------------------------------------ #
    # Shard entries
    # ------------------------------------------------------------------ #

    def write_shard(self, shard_index: int, result) -> Path:
        """Atomically publish one completed shard's ``ShardResult``."""
        self._check_index(shard_index)
        payload = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "seed_root": self.seed_root,
            "config_fingerprint": self.config_fingerprint,
            "plan_digest": self.plan_digest,
            "shard_index": shard_index,
            "persona_names": list(self.shard_plan[shard_index]),
            "result": result,
        }
        path = self.shard_path(shard_index)
        atomic_write_bytes(
            path,
            pickle.dumps(payload, pickle.HIGHEST_PROTOCOL),
            component="checkpoint",
            op="shard",
        )
        return path

    def load_shard(self, shard_index: int):
        """The checkpointed ``ShardResult``, or ``None`` when absent.

        Raises :class:`CorruptShardError` when an entry exists but is
        unreadable or stamped with a different schema version, campaign
        key, or shard plan — the caller quarantines and recomputes.
        """
        self._check_index(shard_index)
        path = self.shard_path(shard_index)
        try:
            # Corruptible seam read: a flipped bit fails the pickle load
            # or envelope validation below, and the caller quarantines
            # and recomputes — never silently resumes altered data.
            raw = _seam_read_bytes(
                path, component="checkpoint", op="shard", corruptible=True
            )
        except FileNotFoundError:
            return None
        try:
            payload = pickle.loads(raw)
        except Exception as exc:
            raise CorruptShardError(
                f"journal entry {path.name} is unreadable: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise CorruptShardError(
                f"journal entry {path.name} has no payload envelope"
            )
        expected = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "seed_root": self.seed_root,
            "config_fingerprint": self.config_fingerprint,
            "plan_digest": self.plan_digest,
            "shard_index": shard_index,
            "persona_names": list(self.shard_plan[shard_index]),
        }
        for field, want in expected.items():
            got = payload.get(field)
            if got != want:
                raise CorruptShardError(
                    f"journal entry {path.name} fails validation: "
                    f"{field}={got!r}, expected {want!r}"
                )
        return payload["result"]

    def has_entry(self, shard_index: int) -> bool:
        return self.shard_path(shard_index).exists()

    def quarantine(self, shard_index: int) -> Optional[Path]:
        """Move a bad entry aside (``*.corrupt``) so a retry can publish."""
        path = self.shard_path(shard_index)
        if not path.exists():
            return None
        return quarantine_path(path)

    def load_completed(self) -> Dict[int, object]:
        """Every valid checkpointed shard, quarantining corrupt entries."""
        completed: Dict[int, object] = {}
        for index in range(len(self.shard_plan)):
            try:
                result = self.load_shard(index)
            except CorruptShardError:
                self.quarantine(index)
                continue
            if result is not None:
                completed[index] = result
        return completed

    def reset(self) -> None:
        """Drop every shard entry and error record (fresh run)."""
        if not self.root.is_dir():
            return
        for pattern in ("shard-*.pkl", "shard-*.error", "shard-*.pkl.corrupt"):
            for path in self.root.glob(pattern):
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # Worker error records
    # ------------------------------------------------------------------ #

    def write_error(self, shard_index: int, text: str) -> None:
        atomic_write_bytes(
            self.error_path(shard_index),
            text.encode("utf-8"),
            component="checkpoint",
            op="error",
        )

    def read_error(self, shard_index: int) -> Optional[str]:
        try:
            return self.error_path(shard_index).read_text()
        except (FileNotFoundError, OSError):
            return None

    # ------------------------------------------------------------------ #
    # Run-level manifest
    # ------------------------------------------------------------------ #

    def write_manifest(
        self,
        *,
        status: str,
        attempts: Optional[Dict[int, List[str]]] = None,
        missing_personas: Sequence[str] = (),
        package_version: str = "",
    ) -> None:
        """Publish the run-level journal manifest (``journal.json``)."""
        if status not in ("running", "complete", "partial", "failed"):
            raise ValueError(f"invalid journal status: {status!r}")
        payload = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "seed_root": self.seed_root,
            "config_fingerprint": self.config_fingerprint,
            "plan_digest": self.plan_digest,
            "shard_plan": [list(names) for names in self.shard_plan],
            "status": status,
            "attempts": {
                str(index): list(outcomes)
                for index, outcomes in sorted((attempts or {}).items())
            },
            "missing_personas": list(missing_personas),
            "package_version": package_version,
        }
        atomic_write_bytes(
            self.manifest_path,
            (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8"),
            component="checkpoint",
            op="manifest",
        )

    def read_manifest(self) -> Optional[Dict[str, object]]:
        try:
            return json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise CorruptShardError(
                f"journal manifest {self.manifest_path} is unreadable: {exc}"
            ) from exc

    def validate_for_resume(self) -> Dict[str, object]:
        """Check the on-disk manifest matches this run's journal key."""
        manifest = self.read_manifest()
        if manifest is None:
            raise CheckpointError(
                f"cannot resume: no journal manifest at {self.manifest_path}"
            )
        for field, want in (
            ("schema", CHECKPOINT_SCHEMA_VERSION),
            ("seed_root", self.seed_root),
            ("config_fingerprint", self.config_fingerprint),
            ("plan_digest", self.plan_digest),
        ):
            got = manifest.get(field)
            if got != want:
                raise CheckpointError(
                    f"cannot resume: journal {field} is {got!r}, this run "
                    f"expects {want!r} (same seed, config, and worker count "
                    "are required to resume a checkpointed campaign)"
                )
        return manifest

    # ------------------------------------------------------------------ #

    def _check_index(self, shard_index: int) -> None:
        if not 0 <= shard_index < len(self.shard_plan):
            raise ValueError(
                f"shard index {shard_index} outside plan of "
                f"{len(self.shard_plan)} shards"
            )
