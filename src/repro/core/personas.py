"""Persona definitions (§3.1).

Nine interest personas (one per skill category), the vanilla control
(Amazon account + Echo, no skills), and three web controls primed by
browsing top sites of a web category instead of using an Echo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.data import categories as cat

__all__ = [
    "Persona",
    "interest_personas",
    "control_personas",
    "all_personas",
    "scaled_roster",
    "positions_by_name",
]


@dataclass(frozen=True)
class Persona:
    """One experimental identity with its own account, device, and IP."""

    name: str
    kind: str  # "interest" | "vanilla" | "web"
    #: Skill category (interest personas) or web category (web personas).
    category: str

    def __post_init__(self) -> None:
        if self.kind not in {"interest", "vanilla", "web"}:
            raise ValueError(f"invalid persona kind: {self.kind}")

    @property
    def email(self) -> str:
        return f"{self.name}@persona.example.com"

    @property
    def display_name(self) -> str:
        if self.kind == "interest":
            return cat.CATEGORY_DISPLAY[self.category]
        if self.kind == "vanilla":
            return "Vanilla"
        return {
            cat.WEB_HEALTH: "Web Health",
            cat.WEB_SCIENCE: "Web Science",
            cat.WEB_COMPUTERS: "Web Computers",
        }[self.category]

    @property
    def uses_echo(self) -> bool:
        return self.kind in {"interest", "vanilla"}


def interest_personas() -> List[Persona]:
    """The nine interest personas, in the paper's table order."""
    return [
        Persona(name=category, kind="interest", category=category)
        for category in cat.ALL_CATEGORIES
    ]


def control_personas() -> List[Persona]:
    """Vanilla plus the three web-primed controls (§3.1.2)."""
    personas = [Persona(name=cat.VANILLA, kind="vanilla", category=cat.VANILLA)]
    personas.extend(
        Persona(name=web, kind="web", category=web) for web in cat.WEB_CATEGORIES
    )
    return personas


def all_personas() -> List[Persona]:
    return interest_personas() + control_personas()


def scaled_roster(scale: int = 1) -> List[Persona]:
    """The roster scaled to ``scale`` interest personas per category.

    ``scale=1`` is exactly :func:`all_personas` — the paper's 13-persona
    campaign.  Larger scales replicate each interest persona
    ``scale - 1`` times (``fashion-r2``, ``fashion-r3``, ...) so
    memory-scaling runs exercise a roster of ``9 * scale + 4`` personas.
    Replicas keep the base persona's category, so they install the same
    skill set; every per-persona random substream is keyed by the replica
    name, so artifacts stay deterministic and order-independent.  The
    controls (vanilla + web) are never replicated: ``vanilla`` must stay
    unique for the control comparisons.
    """
    if scale < 1:
        raise ValueError(f"roster scale must be >= 1, got {scale}")
    personas: List[Persona] = []
    for base in interest_personas():
        personas.append(base)
        personas.extend(
            Persona(
                name=f"{base.name}-r{replica}",
                kind="interest",
                category=base.category,
            )
            for replica in range(2, scale + 1)
        )
    personas.extend(control_personas())
    return personas


def positions_by_name(roster: List[Persona]) -> dict:
    """Map persona name to roster position.

    Roster position is the stable per-campaign persona identity — the
    segment store keys records by it, and the timeline layer classifies
    dirty personas by it — so every consumer that translates names to
    positions should share this one mapping.
    """
    return {persona.name: pos for pos, persona in enumerate(roster)}
