"""PoliCheck consistency analysis (stages ii + iii).

Given extracted flows and a skill's policy text, classify each flow's
disclosure as **clear**, **vague**, **omitted**, or **no policy**
(§7.2.1 / §7.2.2).  The analyzer works on sentences: a disclosure
counts only when an ontology term co-occurs with a collection/sharing
verb in a non-negated sentence — naming Amazon in "works with Amazon
Alexa" is not a disclosure.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.policies.corpus import PolicyCorpus
from repro.policies.policheck.extraction import DataFlow
from repro.policies.policheck.ontology import (
    DataOntology,
    EntityOntology,
    default_data_ontology,
    default_entity_ontology,
)

__all__ = ["Disclosure", "PolicheckAnalyzer", "DISCLOSURE_CLASSES"]

DISCLOSURE_CLASSES = ("clear", "vague", "omitted", "no policy")

_COLLECTION_VERBS = (
    "collect",
    "receive",
    "process",
    "share",
    "send",
    "sent",
    "transmit",
    "disclose",
    "provide",
)

_NEGATIONS = ("not", "never", "no longer", "don't", "do not")

_SENTENCE_SPLIT = re.compile(r"(?<=[.!?])\s+")


@dataclass(frozen=True)
class Disclosure:
    """The classification of one flow against one policy."""

    flow: DataFlow
    classification: str
    #: The matched policy term, when any.
    evidence_term: Optional[str] = None

    def __post_init__(self) -> None:
        if self.classification not in DISCLOSURE_CLASSES:
            raise ValueError(f"invalid classification: {self.classification}")


def _collection_sentences(text: str) -> List[str]:
    """Non-negated sentences containing a collection/sharing verb."""
    sentences = []
    for sentence in _SENTENCE_SPLIT.split(text.replace("\n", " ")):
        lowered = sentence.lower()
        if not any(verb in lowered for verb in _COLLECTION_VERBS):
            continue
        if any(neg in lowered.split() or f" {neg} " in lowered for neg in _NEGATIONS):
            continue
        sentences.append(sentence)
    return sentences


class PolicheckAnalyzer:
    """Classifies extracted flows against policy documents."""

    def __init__(
        self,
        corpus: PolicyCorpus,
        data_ontology: Optional[DataOntology] = None,
        entity_ontology: Optional[EntityOntology] = None,
        include_platform_policy: bool = False,
        org_categories: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> None:
        self.corpus = corpus
        self.data_ontology = data_ontology or default_data_ontology()
        self.entity_ontology = entity_ontology or default_entity_ontology()
        #: §7.2.2 experiment: also consult Amazon's platform policy.
        self.include_platform_policy = include_platform_policy
        self._org_categories = org_categories or {}

    # ------------------------------------------------------------------ #

    def classify_datatype_flow(self, flow: DataFlow) -> Disclosure:
        """Data-type analysis (§7.2.2): is the collected type disclosed?"""
        if flow.data_type is None:
            raise ValueError("flow has no data type; use classify_endpoint_flow")
        document = self.corpus.get(flow.skill_id)
        if document is None:
            return Disclosure(flow=flow, classification="no policy")
        text = document.text
        if self.include_platform_policy:
            text = text + "\n" + self.corpus.amazon_policy
        best: Tuple[str, Optional[str]] = ("omitted", None)
        for sentence in _collection_sentences(text):
            for match in self.data_ontology.matches(sentence):
                if match.target != flow.data_type:
                    continue
                if match.specificity == "exact":
                    return Disclosure(
                        flow=flow, classification="clear", evidence_term=match.term
                    )
                best = ("vague", match.term)
        return Disclosure(flow=flow, classification=best[0], evidence_term=best[1])

    def classify_endpoint_flow(self, flow: DataFlow) -> Disclosure:
        """Endpoint analysis (§7.2.1): is the contacted org disclosed?"""
        document = self.corpus.get(flow.skill_id)
        if document is None:
            return Disclosure(flow=flow, classification="no policy")
        categories = self._org_categories.get(flow.entity, ())
        best: Tuple[str, Optional[str]] = ("omitted", None)
        for sentence in _collection_sentences(document.text):
            alias = self.entity_ontology.exact_match(sentence, flow.entity)
            if alias is not None:
                return Disclosure(flow=flow, classification="clear", evidence_term=alias)
            term = self.entity_ontology.broad_match(sentence, tuple(categories))
            if term is not None:
                best = ("vague", term)
        return Disclosure(flow=flow, classification=best[0], evidence_term=best[1])

    # ------------------------------------------------------------------ #

    def analyze_datatype_flows(self, flows: List[DataFlow]) -> List[Disclosure]:
        return [self.classify_datatype_flow(f) for f in flows]

    def analyze_endpoint_flows(self, flows: List[DataFlow]) -> List[Disclosure]:
        return [self.classify_endpoint_flow(f) for f in flows]
