"""The RPi bridged-access-point router.

All device traffic transits the router, which is where the auditor's
vantage point sits.  The router:

* assigns each attached device a unique LAN IP (one persona per IP, §3.1);
* answers DNS from the endpoint registry, emitting cleartext DNS packets;
* forwards HTTP(S) requests to registered service handlers and emits
  request/response packets into every active capture session — with the
  payload stripped when the transport is TLS, since the router cannot
  decrypt it.

Services (the Alexa cloud, skill backends, ad servers, websites) register a
handler per domain.  This keeps the "Internet" a single dispatch table
while letting every subsystem implement arbitrarily rich behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.netsim.dns import DNS_PORT, DnsServer
from repro.netsim.endpoints import Endpoint, EndpointRegistry
from repro.netsim.faults import DNS_FAILURE_SECONDS, FaultPlan
from repro.netsim.http import HttpRequest, HttpResponse, estimate_size
from repro.netsim.packet import Direction, Packet, Protocol
from repro.netsim.pcap import CaptureSession
from repro.obs.collector import NULL_OBS
from repro.util.clock import SimClock
from repro.util.ids import IdFactory

__all__ = ["Router", "ServiceHandler", "NetworkError"]

ServiceHandler = Callable[[HttpRequest], HttpResponse]

#: Sim seconds of network + service latency on a healthy request.
BASE_LATENCY_SECONDS = 0.05
#: Sim seconds a client burns discovering a connection is refused.
CONNECT_FAILURE_SECONDS = 0.25
#: The DNS blackhole address a PiHole-style blocker answers with.
BLACKHOLE_IP = "0.0.0.0"


class NetworkError(Exception):
    """Raised when a request cannot be delivered (no DNS, no service)."""


class Router:
    """Simulated RPi router + the Internet behind it."""

    LAN_PREFIX = "192.168.7."

    def __init__(
        self,
        registry: EndpointRegistry,
        clock: SimClock,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.registry = registry
        self.clock = clock
        self.dns = DnsServer(registry)
        #: Seeded fault schedule; ``None`` means a perfectly healthy network.
        self.faults = faults
        #: Observability sink for fault counters; rebindable by the runner.
        self.obs = NULL_OBS
        self._ids = IdFactory()
        self._device_ips: Dict[str, str] = {}
        self._services: Dict[str, ServiceHandler] = {}
        self._captures: List[CaptureSession] = []
        self.packets_forwarded = 0

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def attach_device(self, device_id: str) -> str:
        """Attach a device and return its unique LAN IP."""
        if device_id in self._device_ips:
            return self._device_ips[device_id]
        host = len(self._device_ips) + 10
        if host > 250:
            raise NetworkError("LAN address pool exhausted")
        ip = f"{self.LAN_PREFIX}{host}"
        self._device_ips[device_id] = ip
        return ip

    def device_ip(self, device_id: str) -> str:
        ip = self._device_ips.get(device_id)
        if ip is None:
            raise NetworkError(f"device not attached: {device_id}")
        return ip

    def register_service(self, domain: str, handler: ServiceHandler) -> None:
        """Install the handler that answers requests for ``domain``."""
        if domain not in self.registry:
            raise NetworkError(
                f"cannot register service for unknown endpoint {domain}; "
                "register it in the EndpointRegistry first"
            )
        self._services[domain] = handler

    # ------------------------------------------------------------------ #
    # Capture
    # ------------------------------------------------------------------ #

    def start_capture(
        self, label: str, device_filter: Optional[str] = None
    ) -> CaptureSession:
        """Begin a tcpdump-style capture; returns the live session."""
        session = CaptureSession(label=label, device_filter=device_filter)
        self._captures.append(session)
        return session

    def stop_capture(self, session: CaptureSession) -> CaptureSession:
        """Stop and detach a capture session.

        Stopping seals the session's incrementally-built flow table —
        downstream analyses receive pre-grouped flows with frozen
        aggregates; ``flows.sealed`` counts them.
        """
        session.stop()
        if session in self._captures:
            self._captures.remove(session)
        self.obs.inc("flows.sealed", len(session.flows()))
        return session

    def _emit(self, packet: Packet) -> None:
        self.packets_forwarded += 1
        for session in self._captures:
            session.observe(packet)

    # ------------------------------------------------------------------ #
    # Forwarding
    # ------------------------------------------------------------------ #

    def send(self, device_id: str, request: HttpRequest) -> HttpResponse:
        """Deliver ``request`` on behalf of ``device_id``.

        Emits DNS packets (cleartext), then the request/response pair —
        with payloads visible only when the transport is plain HTTP.
        Raises :class:`NetworkError` for unknown hosts or unhandled
        services, mirroring NXDOMAIN / connection-refused.  Every failure
        path consumes simulated time — a failed request is never free —
        and leaves the packets a passive vantage point would really see.

        When a :class:`~repro.netsim.faults.FaultPlan` is installed, the
        plan may additionally fail or slow the request; injected faults
        are counted under ``net.faults.*`` on :attr:`obs`.
        """
        device_ip = self.device_ip(device_id)
        host = request.host
        decision = self.faults.decide(device_id, host) if self.faults else None

        if decision is not None and decision.kind == "nxdomain":
            self.obs.inc("net.faults.nxdomain")
            self._emit_dns_exchange(device_id, device_ip, host, answers=[])
            self.clock.advance(decision.seconds)
            raise NetworkError(f"NXDOMAIN: {host} [injected fault]")

        endpoint = self._resolve(device_id, device_ip, host)
        handler = self._services.get(host)
        if handler is None:
            # The resolver answered, so the connect attempt really goes
            # out on the wire and burns time before it is refused.
            self.clock.advance(CONNECT_FAILURE_SECONDS)
            raise NetworkError(f"connection refused: no service at {host}")

        encrypted = request.is_https
        src_port = 49152 + self._ids.count("ephemeral-port") % 16000
        self._ids.next("ephemeral-port")
        request_payload = None if encrypted else request.to_payload()
        self._emit(
            Packet(
                timestamp=self.clock.now,
                src_ip=device_ip,
                dst_ip=endpoint.ip,
                src_port=src_port,
                dst_port=endpoint.port,
                protocol=Protocol.TLS if encrypted else Protocol.HTTP,
                size=estimate_size(request.to_payload()),
                direction=Direction.OUTBOUND,
                device_id=device_id,
                sni=request.host if encrypted else None,
                payload=request_payload,
            )
        )

        if decision is not None and decision.kind == "timeout":
            # The request left the device (the packet above is on the
            # wire) but no answer ever comes back.
            self.obs.inc("net.faults.timeout")
            self.clock.advance(decision.seconds)
            raise NetworkError(f"connection timed out: {host}")

        latency = BASE_LATENCY_SECONDS  # network + service latency
        if decision is not None and decision.kind == "slow":
            self.obs.inc("net.faults.slow")
            latency += decision.seconds
        self.clock.advance(latency)

        if decision is not None and decision.kind == "http_5xx":
            self.obs.inc("net.faults.http_5xx")
            response = HttpResponse(
                status=503,
                headers={"x-injected-fault": "http-5xx"},
                body={"error": f"service unavailable: {host}"},
            )
        else:
            response = handler(request)

        response_payload = None if encrypted else response.to_payload()
        self._emit(
            Packet(
                timestamp=self.clock.now,
                src_ip=endpoint.ip,
                dst_ip=device_ip,
                src_port=endpoint.port,
                dst_port=src_port,
                protocol=Protocol.TLS if encrypted else Protocol.HTTP,
                size=estimate_size(response.to_payload()),
                direction=Direction.INBOUND,
                device_id=device_id,
                sni=request.host if encrypted else None,
                payload=response_payload,
            )
        )
        return response

    def dns_blackhole(self, device_id: str, host: str) -> None:
        """Emit the DNS exchange a PiHole-style blocker produces.

        The query still reaches the resolver — a passive vantage point
        sees it — but the answer points at :data:`BLACKHOLE_IP`, so the
        follow-up connection dies.  Consumes the failed-resolution round
        trip of simulated time.  Used by
        :class:`repro.defenses.blocking.BlockingRouter` before it raises.
        """
        device_ip = self.device_ip(device_id)
        self._emit_dns_exchange(
            device_id,
            device_ip,
            host,
            answers=[{"domain": host, "ip": BLACKHOLE_IP, "ttl": 2}],
        )
        self.clock.advance(DNS_FAILURE_SECONDS)

    def _resolve(self, device_id: str, device_ip: str, host: str) -> Endpoint:
        """Resolve ``host``, emitting the DNS query/response packets.

        An unknown host still produces an observable DNS exchange (query
        plus empty NXDOMAIN answer) and burns the failed round trip
        before :class:`NetworkError` is raised.
        """
        endpoint = self.registry.lookup_domain(host)
        if endpoint is None:
            self._emit_dns_exchange(device_id, device_ip, host, answers=[])
            self.clock.advance(DNS_FAILURE_SECONDS)
            raise NetworkError(f"NXDOMAIN: {host}")
        record = self.dns.resolve(host)
        self._emit_dns_exchange(
            device_id,
            device_ip,
            host,
            answers=[{"domain": record.domain, "ip": record.ip, "ttl": record.ttl}],
        )
        return endpoint

    def _emit_dns_exchange(
        self, device_id: str, device_ip: str, host: str, answers: List[dict]
    ) -> None:
        """Emit one DNS query/response packet pair (empty answers ≈ NXDOMAIN)."""
        dns_server_ip = f"{self.LAN_PREFIX}1"
        query_payload = {"kind": "dns-query", "domain": host}
        response_payload = {"kind": "dns-response", "answers": answers}
        common = dict(
            timestamp=self.clock.now,
            protocol=Protocol.DNS,
            device_id=device_id,
        )
        self._emit(
            Packet(
                src_ip=device_ip,
                dst_ip=dns_server_ip,
                src_port=5353,
                dst_port=DNS_PORT,
                size=estimate_size(query_payload),
                direction=Direction.OUTBOUND,
                payload=query_payload,
                **common,
            )
        )
        self._emit(
            Packet(
                src_ip=dns_server_ip,
                dst_ip=device_ip,
                src_port=DNS_PORT,
                dst_port=5353,
                size=estimate_size(response_payload),
                direction=Direction.INBOUND,
                payload=response_payload,
                **common,
            )
        )
