#!/usr/bin/env python3
"""Misactivation study (paper §2.2, after Dubois et al. [59]).

Smart speakers are supposed to record only after the wake word, but they
misactivate.  This example plays hours of ambient conversation (no wake
word) at an instrumented AVS Echo and counts how many utterances were
recorded and uploaded anyway — the privacy failure mode that motivates
the paper's transparency argument.
"""

import argparse

from repro.alexa import AVSEcho, AlexaCloud, AmazonAccount
from repro.core.report import render_kv
from repro.data.domains import build_endpoint_registry
from repro.data.skill_catalog import build_catalog
from repro.netsim.router import Router
from repro.util.clock import SimClock
from repro.util.rng import Seed

AMBIENT_LINES = (
    "did you call the doctor about the appointment",
    "we should book the flights for december",
    "the election coverage was exhausting tonight",
    "i think the rent is going up again",
    "her test results come back on friday",
    "let's not tell anyone about the offer yet",
    "can you believe what he said at dinner",
    "the baby finally slept through the night",
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--utterances", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    seed = Seed(args.seed)
    clock = SimClock()
    router = Router(build_endpoint_registry(), clock)
    catalog = build_catalog(seed)
    cloud = AlexaCloud(catalog, router, clock, seed)
    account = AmazonAccount(email="ambient@persona.example.com", persona="ambient")
    device = AVSEcho("echo-ambient", account, router, cloud, seed)

    recorded = []
    for i in range(args.utterances):
        line = AMBIENT_LINES[i % len(AMBIENT_LINES)]
        before = len(device.plaintext_log)
        device.say(line)  # no wake word!
        if len(device.plaintext_log) > before:
            recorded.append(line)

    leaked_transcripts = {
        r.payload["body"]["voice_recording"]
        for r in device.plaintext_log
        if r.payload["body"].get("event") == "recognize"
    }

    print(
        render_kv(
            {
                "ambient utterances played": args.utterances,
                "misactivations (recorded + uploaded)": len(recorded),
                "misactivation rate": f"{100 * len(recorded) / args.utterances:.2f}%",
                "cloud-side misactivation counter": cloud.voice.misactivations,
                "distinct private sentences now at Amazon": len(leaked_transcripts),
            },
            title="Misactivation study",
        )
    )
    if leaked_transcripts:
        print("\nexamples of what leaked:")
        for text in sorted(leaked_transcripts)[:4]:
            print(f"  - {text!r}")


if __name__ == "__main__":
    main()
