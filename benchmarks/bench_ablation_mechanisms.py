"""Ablations of the simulation's load-bearing design choices (DESIGN.md).

Three mechanisms make the headline results come out:

1. the **informed-bidder fraction** (why only six personas are
   statistically significant, Table 7);
2. the **holiday seasonal factor** (why pre-interaction bids look as
   high as post-interaction ones, Table 6);
3. the **partner signal gating** (why cookie-sync partners outbid
   non-partners, Table 10).

Each ablation removes one mechanism and shows the corresponding paper
pattern collapse.
"""

import datetime as dt
import statistics

from repro.adtech.bidder import AuctionContext, Bidder
from repro.core.report import render_table
from repro.core.stats import mann_whitney_u
from repro.data import calibration
from repro.data import categories as cat
from repro.util.rng import Seed

UTC = dt.timezone.utc
JANUARY = dt.datetime(2022, 1, 10, tzinfo=UTC)
DECEMBER = dt.datetime(2021, 12, 20, tzinfo=UTC)


def _bids(bidder, persona, when=JANUARY, n=38, interacted=True):
    return [
        bidder.compute_bid(
            AuctionContext(
                persona=persona,
                interacted=interacted,
                when=when,
                slot_id=f"slot-{i}",
                iteration=0,
            )
        )
        for i in range(n)
    ]


def bench_ablation_informed_fraction(benchmark, monkeypatch):
    """q = 1 for everyone ⇒ Wine/Health/Smart Home become significant."""

    def run(fractions):
        # Patch where the name is *used*: bidder.py binds it at import.
        import repro.adtech.bidder as bidder_mod

        monkeypatch.setattr(bidder_mod, "INFORMED_FRACTION", fractions)
        bidder = Bidder("dsp00", "ib.dsp00.x.com", is_partner=True, seed=Seed(42))
        # Large n for a stable rank-biserial estimate; the significance
        # threshold itself lives at the paper's n≈40 (bench_table7).
        vanilla = _bids(bidder, cat.VANILLA, n=400)
        out = {}
        for persona in (cat.WINE, cat.HEALTH, cat.SMART_HOME, cat.NAVIGATION):
            out[persona] = mann_whitney_u(
                _bids(bidder, persona, n=400), vanilla, alternative="greater"
            )
        return out

    calibrated = run(dict(calibration.INFORMED_FRACTION))
    ablated = benchmark.pedantic(
        run,
        args=({p: 1.0 for p in calibration.INFORMED_FRACTION},),
        rounds=2,
        iterations=1,
    )

    paper_r = {cat.WINE: 0.192, cat.HEALTH: 0.139, cat.SMART_HOME: 0.210,
               cat.NAVIGATION: 0.410}
    rows = [
        (
            p,
            f"{calibrated[p].effect_size:.3f}",
            f"{paper_r[p]:.3f}",
            f"{ablated[p].effect_size:.3f}",
        )
        for p in calibrated
    ]
    print()
    print(
        render_table(
            ["persona", "r (calibrated q)", "r (paper)", "r (q = 1 ablation)"],
            rows,
            title="Ablation: informed-bidder fraction",
        )
    )

    # Calibrated effect sizes track the paper's; removing the mechanism
    # (q = 1) inflates the weak trio's effects well past the paper's —
    # Table 7's 6-significant/3-not split needs the informed fraction.
    weak = (cat.WINE, cat.HEALTH, cat.SMART_HOME)
    for persona in weak:
        assert abs(calibrated[persona].effect_size - paper_r[persona]) < 0.15
        assert ablated[persona].effect_size > calibrated[persona].effect_size + 0.03
    # Navigation already has q = 1: the ablation changes nothing there.
    assert abs(
        ablated[cat.NAVIGATION].effect_size
        - calibrated[cat.NAVIGATION].effect_size
    ) < 1e-9


def bench_ablation_holiday_factor(benchmark):
    """No seasonal factor ⇒ Table 6's no-interaction column deflates and
    the 'high bids without interaction' observation disappears."""

    def december_vs_january():
        bidder = Bidder("dsp01", "ib.dsp01.x.com", is_partner=True, seed=Seed(42))
        december = _bids(bidder, cat.VANILLA, when=DECEMBER, interacted=False)
        january = _bids(bidder, cat.VANILLA, when=JANUARY, interacted=False)
        return statistics.mean(december), statistics.mean(january)

    dec_mean, jan_mean = benchmark.pedantic(
        december_vs_january, rounds=2, iterations=1
    )
    print()
    print(
        render_table(
            ["window", "mean CPM (no interaction)"],
            [
                ("December (holiday factor on)", f"{dec_mean:.3f}"),
                ("January (factor = 1, the ablation)", f"{jan_mean:.3f}"),
            ],
            title="Ablation: holiday factor",
        )
    )
    # Pre-Christmas bids ~3x January baseline — without this, Table 6's
    # no-interaction column could not match its interaction column.
    assert dec_mean > 2.0 * jan_mean


def bench_ablation_partner_gating(benchmark):
    """NON_PARTNER_SIGNAL_FACTOR = 1 ⇒ Table 10's partner advantage is gone."""

    def medians(factor):
        import repro.adtech.bidder as bidder_mod

        original = bidder_mod.NON_PARTNER_SIGNAL_FACTOR
        bidder_mod.NON_PARTNER_SIGNAL_FACTOR = factor
        try:
            partner = Bidder("dsp02", "ib.dsp02.x.com", is_partner=True, seed=Seed(42))
            non_partner = Bidder(
                "ndsp02", "ib.ndsp02.x.com", is_partner=False, seed=Seed(42)
            )
            p = statistics.median(_bids(partner, cat.PETS, n=200))
            np_ = statistics.median(_bids(non_partner, cat.PETS, n=200))
            return p, np_
        finally:
            bidder_mod.NON_PARTNER_SIGNAL_FACTOR = original

    gated_p, gated_np = medians(0.45)
    ablated_p, ablated_np = benchmark.pedantic(
        medians, args=(1.0,), rounds=2, iterations=1
    )
    rows = [
        ("gated (factor 0.45)", f"{gated_p:.3f}", f"{gated_np:.3f}", f"{gated_p / gated_np:.2f}x"),
        ("ablated (factor 1.0)", f"{ablated_p:.3f}", f"{ablated_np:.3f}", f"{ablated_p / ablated_np:.2f}x"),
    ]
    print()
    print(
        render_table(
            ["configuration", "partner median", "non-partner median", "ratio"],
            rows,
            title="Ablation: partner signal gating",
        )
    )
    assert gated_p / gated_np > 1.3  # partners clearly ahead when gated
    assert ablated_p / ablated_np < 1.25  # advantage collapses when ablated
