"""Smoke tests for the ``python -m repro`` entry point."""

import subprocess
import sys

from repro import __version__


class TestModuleEntry:
    def test_version_via_module(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "version"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert result.stdout.strip() == __version__

    def test_help_lists_commands(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        for command in ("run", "tables", "defend", "version"):
            assert command in result.stdout

    def test_unknown_command_rejected(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "teleport"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode != 0
