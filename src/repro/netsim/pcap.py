"""tcpdump-style capture sessions.

The paper's methodology brackets each skill's lifecycle with
``tcpdump`` enable/disable on the RPi router so traffic can be attributed
cleanly per skill (§3.2).  :class:`CaptureSession` reproduces that: while a
session is active on the router, every packet the router forwards is
appended to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.netsim.dns import DnsTable, build_dns_table
from repro.netsim.packet import Flow, Packet, group_flows

__all__ = ["CaptureSession"]


@dataclass
class CaptureSession:
    """A bounded window of captured packets, labelled for attribution.

    Attributes
    ----------
    label:
        Attribution label, e.g. the skill id being exercised.
    device_filter:
        When set, only packets from/to this device are recorded (the paper
        gives each persona's Echo a unique IP for the same reason).
    """

    label: str
    device_filter: Optional[str] = None
    packets: List[Packet] = field(default_factory=list)
    active: bool = True

    def observe(self, packet: Packet) -> None:
        """Record a packet if the session is active and the filter matches."""
        if not self.active:
            return
        if self.device_filter is not None and packet.device_id != self.device_filter:
            return
        self.packets.append(packet)

    def stop(self) -> "CaptureSession":
        """Freeze the session; further packets are ignored."""
        self.active = False
        return self

    def flows(self) -> List[Flow]:
        """Group the captured packets into flows."""
        return group_flows(self.packets)

    def dns_table(self) -> DnsTable:
        """IP→domain mapping recovered from this capture's DNS answers."""
        return build_dns_table(self.packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def __len__(self) -> int:
        return len(self.packets)
