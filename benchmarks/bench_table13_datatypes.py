"""Table 13: PoliCheck data-type disclosure analysis on AVS plaintext."""

from paper_targets import TABLE13

from repro.core.compliance import analyze_compliance
from repro.core.report import render_table
from repro.data import datatypes as dt


def bench_table13_datatypes(benchmark, dataset, world):
    analysis = benchmark.pedantic(
        analyze_compliance,
        args=(dataset, world.corpus, world.org_resolver(), world.org_categories()),
        rounds=2,
        iterations=1,
    )

    rows = []
    for data_type in dt.ALL_DATA_TYPES:
        counts = analysis.datatype_table.get(data_type, {})
        paper = TABLE13[data_type]
        rows.append(
            (
                data_type,
                counts.get("clear", 0),
                paper[0],
                counts.get("vague", 0),
                paper[1],
                counts.get("omitted", 0),
                paper[2],
                counts.get("no policy", 0),
                paper[3],
            )
        )
    print()
    print(
        render_table(
            ["data type", "clr", "p", "vag", "p", "omi", "p", "nopol", "p"],
            rows,
            title="Table 13 (measured vs paper)",
        )
    )

    for data_type in dt.ALL_DATA_TYPES:
        counts = analysis.datatype_table.get(data_type, {})
        clear, vague, omitted, no_policy = TABLE13[data_type]
        # Exact on the no-policy column (the corpus controls it exactly);
        # within a phrasing-noise margin elsewhere.
        assert counts.get("no policy", 0) == no_policy, data_type
        assert abs(counts.get("clear", 0) - clear) <= 3, data_type
        assert abs(counts.get("vague", 0) - vague) <= 10, data_type
        assert abs(counts.get("omitted", 0) - omitted) <= 12, data_type

    # Headline claims: most disclosures are omissions; clears are rare;
    # only voice recording and customer id have any clear disclosures.
    for data_type in dt.ALL_DATA_TYPES:
        counts = analysis.datatype_table.get(data_type, {})
        disclosed = counts.get("clear", 0) + counts.get("vague", 0)
        hidden = counts.get("omitted", 0) + counts.get("no policy", 0)
        assert hidden > 2 * disclosed, data_type
