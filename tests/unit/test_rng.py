"""Tests for deterministic RNG derivation."""

import random

import pytest

from repro.util.rng import Seed, derive_seed_int


class TestDeriveSeedInt:
    def test_same_path_same_seed(self):
        assert derive_seed_int(42, ["a", "b"]) == derive_seed_int(42, ["a", "b"])

    def test_different_root_different_seed(self):
        assert derive_seed_int(42, ["a"]) != derive_seed_int(43, ["a"])

    def test_different_path_different_seed(self):
        assert derive_seed_int(42, ["a"]) != derive_seed_int(42, ["b"])

    def test_path_parts_not_concatenation_ambiguous(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert derive_seed_int(0, ["ab", "c"]) != derive_seed_int(0, ["a", "bc"])

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed_int(7, ["x"]) < 2**64


class TestSeed:
    def test_rng_streams_reproducible(self):
        a = Seed(1).rng("auction", 5)
        b = Seed(1).rng("auction", 5)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_rng_streams_independent(self):
        a = Seed(1).rng("auction", 5)
        b = Seed(1).rng("auction", 6)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_numpy_rng_reproducible(self):
        a = Seed(3).numpy_rng("bids")
        b = Seed(3).numpy_rng("bids")
        assert (a.standard_normal(8) == b.standard_normal(8)).all()

    def test_derive_equivalent_to_nested_path(self):
        child = Seed(9).derive("alexa")
        assert child.rng("x").random() == Seed(9).derive("alexa").rng("x").random()

    def test_returns_stdlib_random(self):
        assert isinstance(Seed(0).rng("z"), random.Random)

    def test_rejects_non_int_root(self):
        with pytest.raises(TypeError):
            Seed("42")  # type: ignore[arg-type]

    def test_equality_and_hash(self):
        assert Seed(5) == Seed(5)
        assert Seed(5) != Seed(6)
        assert len({Seed(5), Seed(5), Seed(6)}) == 2

    def test_repr(self):
        assert repr(Seed(12)) == "Seed(12)"
