"""Tests for the router, DNS, endpoint registry, and capture sessions."""

import pytest

from repro.netsim.dns import build_dns_table
from repro.netsim.endpoints import EndpointRegistry, registrable_domain
from repro.netsim.http import HttpRequest, HttpResponse
from repro.netsim.packet import Protocol
from repro.netsim.router import NetworkError, Router
from repro.util.clock import SimClock


@pytest.fixture
def registry():
    reg = EndpointRegistry()
    reg.register("api.amazon.com", organization="Amazon", category="functional")
    reg.register("plain.example.com", organization="Example", category="functional", port=80)
    return reg


@pytest.fixture
def router(registry):
    r = Router(registry, SimClock())
    r.register_service(
        "api.amazon.com", lambda req: HttpResponse(status=200, body={"ok": True})
    )
    r.register_service(
        "plain.example.com", lambda req: HttpResponse(status=200, body={"plain": True})
    )
    return r


class TestEndpointRegistry:
    def test_register_and_lookup(self, registry):
        ep = registry.require("api.amazon.com")
        assert registry.lookup_ip(ep.ip) is ep

    def test_idempotent_registration(self, registry):
        again = registry.register("api.amazon.com", organization="Amazon")
        assert again is registry.require("api.amazon.com")

    def test_conflicting_org_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register("api.amazon.com", organization="NotAmazon")

    def test_deterministic_ips(self):
        a = EndpointRegistry().register("x.test.com", organization="X")
        b = EndpointRegistry().register("x.test.com", organization="X")
        assert a.ip == b.ip

    def test_unknown_require_raises(self, registry):
        with pytest.raises(KeyError):
            registry.require("nope.example.org")

    def test_invalid_domain_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register("nodots", organization="X")

    def test_len_and_contains(self, registry):
        assert len(registry) == 2
        assert "api.amazon.com" in registry


class TestRegistrableDomain:
    def test_two_labels(self):
        assert registrable_domain("amazon.com") == "amazon.com"

    def test_subdomain_collapsed(self):
        assert registrable_domain("device-metrics-us-2.amazon.com") == "amazon.com"

    def test_multi_label_suffix(self):
        assert (
            registrable_domain("ingestion.us-east-1.prod.arteries.alexa.a2z.com")
            == "alexa.a2z.com"
        )


class TestRouter:
    def test_attach_assigns_unique_ips(self, router):
        ips = {router.attach_device(f"echo-{i}") for i in range(5)}
        assert len(ips) == 5

    def test_attach_idempotent(self, router):
        assert router.attach_device("echo-1") == router.attach_device("echo-1")

    def test_send_requires_attachment(self, router):
        with pytest.raises(NetworkError):
            router.send("ghost", HttpRequest("GET", "https://api.amazon.com/x"))

    def test_https_payload_hidden_sni_visible(self, router):
        router.attach_device("echo-1")
        cap = router.start_capture("skill-A")
        router.send("echo-1", HttpRequest("GET", "https://api.amazon.com/v1/ping"))
        router.stop_capture(cap)
        tls = [p for p in cap if p.protocol is Protocol.TLS]
        assert len(tls) == 2
        assert all(p.payload is None for p in tls)
        assert all(p.sni == "api.amazon.com" for p in tls)

    def test_http_payload_visible(self, router):
        router.attach_device("echo-1")
        cap = router.start_capture("skill-A")
        router.send("echo-1", HttpRequest("GET", "http://plain.example.com/x"))
        router.stop_capture(cap)
        http = [p for p in cap if p.protocol is Protocol.HTTP]
        assert http[0].payload["kind"] == "http-request"
        assert http[1].payload["kind"] == "http-response"

    def test_dns_packets_emitted_and_recoverable(self, router, registry):
        router.attach_device("echo-1")
        cap = router.start_capture("skill-A")
        router.send("echo-1", HttpRequest("GET", "https://api.amazon.com/v1/ping"))
        table = build_dns_table(cap.packets)
        ep = registry.require("api.amazon.com")
        assert table.domain_for_ip(ep.ip) == "api.amazon.com"

    def test_nxdomain(self, router, registry):
        router.attach_device("echo-1")
        registry.register("orphan.example.net", organization="Orphan")
        with pytest.raises(NetworkError, match="NXDOMAIN"):
            router.send("echo-1", HttpRequest("GET", "https://missing.example.net/"))

    def test_connection_refused_without_service(self, router, registry):
        router.attach_device("echo-1")
        registry.register("orphan.example.net", organization="Orphan")
        with pytest.raises(NetworkError, match="refused"):
            router.send("echo-1", HttpRequest("GET", "https://orphan.example.net/"))

    def test_capture_stop_freezes(self, router):
        router.attach_device("echo-1")
        cap = router.start_capture("skill-A")
        router.send("echo-1", HttpRequest("GET", "https://api.amazon.com/a"))
        n = len(cap)
        router.stop_capture(cap)
        router.send("echo-1", HttpRequest("GET", "https://api.amazon.com/b"))
        assert len(cap) == n

    def test_capture_device_filter(self, router):
        router.attach_device("echo-1")
        router.attach_device("echo-2")
        cap = router.start_capture("only-echo-2", device_filter="echo-2")
        router.send("echo-1", HttpRequest("GET", "https://api.amazon.com/a"))
        router.send("echo-2", HttpRequest("GET", "https://api.amazon.com/b"))
        router.stop_capture(cap)
        assert cap.packets
        assert all(p.device_id == "echo-2" for p in cap)

    def test_concurrent_captures_both_observe(self, router):
        router.attach_device("echo-1")
        cap1 = router.start_capture("one")
        cap2 = router.start_capture("two")
        router.send("echo-1", HttpRequest("GET", "https://api.amazon.com/a"))
        assert len(cap1) == len(cap2) > 0

    def test_clock_advances_on_send(self, router):
        router.attach_device("echo-1")
        before = router.clock.now
        router.send("echo-1", HttpRequest("GET", "https://api.amazon.com/a"))
        assert router.clock.now > before

    def test_register_service_unknown_endpoint(self, router):
        with pytest.raises(NetworkError):
            router.register_service("ghost.example.com", lambda req: HttpResponse(200))


class TestHttpModels:
    def test_request_host_path_query(self):
        req = HttpRequest("GET", "https://a.example.com/p/q?x=1&y=2")
        assert req.host == "a.example.com"
        assert req.path == "/p/q"
        assert req.query == {"x": "1", "y": "2"}

    def test_with_query_merges(self):
        req = HttpRequest("GET", "https://a.example.com/p?x=1").with_query(y="2")
        assert req.query == {"x": "1", "y": "2"}

    def test_query_repeated_keys_last_wins(self):
        # The dict accessor keeps its historical last-wins shape...
        req = HttpRequest("GET", "https://a.example.com/s?uid=alpha&uid=beta")
        assert req.query == {"uid": "beta"}

    def test_query_pairs_preserves_duplicates(self):
        # ...while the pair accessors expose every value, in URL order.
        req = HttpRequest(
            "GET", "https://a.example.com/s?uid=alpha&x=1&uid=beta"
        )
        assert req.query_pairs == [("uid", "alpha"), ("x", "1"), ("uid", "beta")]
        assert req.query_values("uid") == ["alpha", "beta"]
        assert req.query_values("missing") == []

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError):
            HttpRequest("FETCH", "https://a.example.com/")

    def test_bad_url_rejected(self):
        with pytest.raises(ValueError):
            HttpRequest("GET", "not-a-url")

    def test_response_redirect_requires_3xx(self):
        with pytest.raises(ValueError):
            HttpResponse(status=200, redirect_url="https://b.example.com/")

    def test_response_ok(self):
        assert HttpResponse(status=204).ok
        assert not HttpResponse(status=404).ok
