"""Table 10: bid values from Amazon's cookie-sync partners vs
non-partner advertisers, per persona."""

from repro.core.bids import partner_split
from repro.core.report import render_table
from repro.core.syncing import detect_cookie_syncing
from repro.data import categories as cat


def bench_table10_partners(benchmark, dataset):
    sync = detect_cookie_syncing(dataset)

    split = benchmark.pedantic(
        partner_split, args=(dataset, sync.amazon_partners), rounds=2, iterations=1
    )

    rows = []
    for persona in list(cat.ALL_CATEGORIES) + [cat.VANILLA]:
        partner, non_partner = split[persona]
        rows.append(
            (
                persona,
                f"{partner.median:.3f}/{partner.mean:.3f}",
                f"{non_partner.median:.3f}/{non_partner.mean:.3f}",
            )
        )
    print()
    print(
        render_table(
            ["persona", "partner med/mean", "non-partner med/mean"],
            rows,
            title="Table 10",
        )
    )

    # Shape: partners' medians are higher for most interest personas
    # (paper: 6+), because the interest signal flows through the sync;
    # vanilla shows no partner advantage (no interest data to share).
    higher = [
        p
        for p in cat.ALL_CATEGORIES
        if split[p][0].median > split[p][1].median
    ]
    assert len(higher) >= 6
    vanilla_partner, vanilla_non = split[cat.VANILLA]
    assert abs(vanilla_partner.median - vanilla_non.median) < 0.02
    # At least one persona shows a large (>=1.5x) partner advantage.
    assert any(
        split[p][0].median > 1.5 * split[p][1].median for p in cat.ALL_CATEGORIES
    )
