"""Campaign resilience under injected network faults.

Runs a scaled-down campaign under the ``mild`` and ``harsh`` fault
profiles and measures what the fault subsystem promises: the run still
completes with a full persona roster, every injected fault and client
retry is accounted for in the observability counters, and the dataset
stays usable (partial, not broken) even when hard failures exhaust the
retry budget."""

import dataclasses

from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.personas import all_personas
from repro.core.report import render_kv
from repro.util.rng import Seed

SMALL = ExperimentConfig(
    skills_per_persona=4,
    pre_iterations=2,
    post_iterations=2,
    crawl_sites=3,
    prebid_discovery_target=8,
    audio_hours=1.0,
    fault_profile="mild",
)


def _run_faulted_campaigns():
    mild = run_campaign(SMALL, Seed(42))
    harsh = run_campaign(
        dataclasses.replace(SMALL, fault_profile="harsh"), Seed(42)
    )
    return mild, harsh


def _fault_stats(dataset):
    counters = dataset.obs.metrics.as_dict()["counters"]
    injected = {
        k.split(".")[-1]: v
        for k, v in counters.items()
        if k.startswith(("net.faults.", "web.faults."))
    }
    total_injected = sum(
        v for k, v in counters.items() if ".faults." in k
    )
    retries = sum(v for k, v in counters.items() if k.endswith(".retries"))
    exhausted = sum(
        v for k, v in counters.items() if k.endswith(".retry_exhausted")
    )
    degraded = sum(
        v
        for k, v in counters.items()
        if k.endswith(("_failures", "sessions_failed", "requests_failed"))
    )
    return total_injected, retries, exhausted, degraded


def bench_fault_resilience(benchmark):
    mild, harsh = benchmark.pedantic(_run_faulted_campaigns, rounds=2, iterations=1)

    mild_injected, mild_retries, mild_exhausted, mild_degraded = _fault_stats(mild)
    harsh_injected, harsh_retries, harsh_exhausted, harsh_degraded = _fault_stats(
        harsh
    )
    print()
    print(
        render_kv(
            {
                "mild: faults injected": mild_injected,
                "mild: client retries": mild_retries,
                "mild: retry budget exhausted": mild_exhausted,
                "mild: degraded operations": mild_degraded,
                "harsh: faults injected": harsh_injected,
                "harsh: client retries": harsh_retries,
                "harsh: retry budget exhausted": harsh_exhausted,
                "harsh: degraded operations": harsh_degraded,
            },
            title="campaign resilience under injected faults",
        )
    )

    # Both runs complete with the full roster — faults degrade, never abort.
    roster = [p.name for p in all_personas()]
    assert list(mild.personas) == roster
    assert list(harsh.personas) == roster
    assert mild.obs.manifest.fault_profile == "mild"
    assert harsh.obs.manifest.fault_profile == "harsh"

    # Faults fired and clients fought back.
    assert mild_injected > 0 and mild_retries > 0
    # A 4x-rate profile injects strictly more faults than mild.
    assert harsh_injected > mild_injected
    assert harsh_retries > mild_retries
