"""Pipeline-cost benchmarks: what the framework itself costs to run.

Not a paper table — these time the reproduction's own moving parts so
regressions in the simulator or the analyses are caught: world build,
one skill-session audit, one crawl iteration, a DSAR round trip, the
persona-sharded parallel runner's speedup over the serial campaign, and
the capture→analysis hot path against its pre-optimization baseline
(``bench_pipeline_throughput`` — the CI perf-smoke gate).
"""

import os
import time
from collections import Counter
from typing import Dict, List

from repro.alexa import AmazonAccount, EchoDevice
from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.parallel import _run_shard, shard_personas
from repro.core.personas import all_personas
from repro.core.traffic import _classify_org, analyze_traffic
from repro.core.world import build_world
from repro.data.domains import PIHOLE_FILTER_TEXT
from repro.netsim.dns import build_dns_table
from repro.netsim.packet import Flow, FlowKey, Packet, flow_key
from repro.orgmap.filterlists import FilterList, parse_rules
from repro.orgmap.resolver import OrgResolver
from repro.util.rng import Seed
from repro.web import BrowserProfile, OpenWPMCrawler, discover_prebid_sites


def bench_world_build(benchmark):
    world = benchmark(lambda: build_world(Seed(101)))
    assert len(world.catalog) == 450


def bench_skill_session_audit(benchmark):
    world = build_world(Seed(102))
    account = AmazonAccount(email="perf@persona.example.com", persona="perf")
    device = EchoDevice("echo-perf", account, world.router, world.cloud, world.seed)
    spec = world.catalog.by_name("Garmin")
    world.marketplace.install(account, spec.skill_id)

    def run_session():
        capture = world.router.start_capture("perf", device_filter="echo-perf")
        device.run_skill_session(spec)
        device.background_sync(list(spec.amazon_endpoints))
        world.router.stop_capture(capture)
        return capture

    capture = benchmark(run_session)
    assert len(capture) > 10


def bench_crawl_iteration(benchmark):
    world = build_world(Seed(103))
    probe = BrowserProfile("probe-perf", "probe")
    world.adtech.register_profile(probe)
    sites = discover_prebid_sites(
        world.toplist, world.universe, world.adtech, probe, world.clock, target=20
    )
    profile = BrowserProfile("prof-perf", "fashion-and-style")
    crawler = OpenWPMCrawler(
        profile,
        world.universe,
        world.adtech,
        world.clock,
        world.seed,
        bot_mitigation=False,
    )
    counter = iter(range(10_000))

    result = benchmark(lambda: crawler.crawl_iteration(sites, next(counter)))
    assert result.bids


def bench_dsar_round_trip(benchmark):
    world = build_world(Seed(104))
    account = AmazonAccount(email="dsar@persona.example.com", persona="dsar")
    world.cloud.register_account(account)
    export = benchmark(lambda: world.dsar.request_data(account.customer_id))
    assert export.files


def bench_parallel_speedup(benchmark):
    """Persona-sharded runner at 4 workers: ≥1.8× over the serial run.

    Wall-clock speedup only materializes with ≥4 CPUs, so the invariant
    asserted everywhere is the *critical path*: the slowest shard (which
    bounds parallel wall-clock on an unloaded machine) must run ≥1.8×
    faster than the serial campaign.  On hosts that actually have the
    cores, the measured end-to-end speedup is asserted too.
    """
    config = ExperimentConfig(
        skills_per_persona=10,
        pre_iterations=2,
        post_iterations=6,
        crawl_sites=8,
        prebid_discovery_target=50,
        audio_hours=2.0,
    )
    seed = Seed(105)

    started = time.perf_counter()
    serial_dataset = run_campaign(config, seed, obs=False)
    serial_seconds = time.perf_counter() - started

    # Each shard timed in isolation: the max is what a 4-worker run
    # converges to when every worker has its own core.
    shard_seconds = []
    for index, shard in enumerate(shard_personas(all_personas(), 4)):
        started = time.perf_counter()
        _run_shard(index, seed, config, [p.name for p in shard])
        shard_seconds.append(time.perf_counter() - started)
    critical_path = max(shard_seconds)

    parallel_dataset = benchmark.pedantic(
        lambda: run_campaign(config, seed, parallel=True, workers=4, obs=False),
        rounds=1,
        iterations=1,
    )
    parallel_seconds = parallel_dataset.timings["total"]

    ideal_speedup = serial_seconds / critical_path
    measured_speedup = serial_seconds / parallel_seconds
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["critical_path_seconds"] = round(critical_path, 3)
    benchmark.extra_info["ideal_speedup"] = round(ideal_speedup, 2)
    benchmark.extra_info["measured_speedup"] = round(measured_speedup, 2)

    assert len(parallel_dataset.personas) == len(serial_dataset.personas)
    assert ideal_speedup >= 1.8, (
        f"critical-path speedup {ideal_speedup:.2f}x < 1.8x: shard load "
        f"balance regressed (shards: {[round(s, 2) for s in shard_seconds]})"
    )
    if len(os.sched_getaffinity(0)) >= 4:
        assert measured_speedup >= 1.8, (
            f"measured 4-worker speedup {measured_speedup:.2f}x < 1.8x "
            f"(serial {serial_seconds:.2f}s, parallel {parallel_seconds:.2f}s)"
        )


def _legacy_group_flows(packets: List[Packet]) -> List[Flow]:
    """Post-hoc flow grouping as the pipeline did it before sealing.

    Unsealed flows keep the legacy per-property O(n) scan semantics, so
    timing this path reproduces the old aggregate-access cost too.
    """
    flows: Dict[FlowKey, Flow] = {}
    for packet in packets:
        key = flow_key(packet)
        flow = flows.get(key)
        if flow is None:
            flows[key] = flow = Flow(key=key, packets=[])
        flow.packets.append(packet)
    return list(flows.values())


def _legacy_analyze(dataset, resolver, filter_list, vendor_by_skill) -> Counter:
    """The pre-optimization §4 hot path, preserved as the baseline.

    Re-groups every capture's packets post hoc, rebuilds the DNS table
    per capture, and resolves/classifies every (skill, domain)
    occurrence from scratch — exactly what ``analyze_traffic`` did
    before sealed flows and the memo caches.  Returns the Table 2
    traffic matrix so the optimized path can be checked against it.
    """
    traffic_matrix: Counter = Counter()
    for artifacts in dataset.interest_personas:
        for skill_id, capture in artifacts.skill_captures.items():
            dns_table = build_dns_table(capture.packets)
            vendor = vendor_by_skill.get(skill_id, "")
            domains: Dict[str, tuple] = {}
            for flow in _legacy_group_flows(capture.packets):
                if flow.key[3] == "dns":
                    continue
                attribution = resolver.attribute_ip(
                    flow.remote_ip, dns_table, sni=flow.sni
                )
                if attribution.domain is None:
                    continue
                org, count = domains.get(
                    attribution.domain, (attribution.organization, 0)
                )
                domains[attribution.domain] = (org, count + len(flow.packets))
            for domain, (org, requests) in domains.items():
                org_class = _classify_org(org, vendor)
                traffic_matrix[(org_class, filter_list.is_blocked(domain))] += requests
    return traffic_matrix


def bench_pipeline_throughput(benchmark, bench_record, dataset, world, vendor_by_skill):
    """Capture→analysis hot path: ≥1.5× over the pre-optimization baseline.

    Both paths consume the paper-scale session dataset and include
    auditor-side setup (resolver + filter-list construction) in the timed
    region; the optimized path reads pre-sealed flows and incremental DNS
    tables and memoizes domain resolution/classification, the legacy path
    re-derives everything per capture.  The speedup ratio — not absolute
    seconds — is what ``benchmarks/check_bench_regression.py`` gates in
    CI, so the number is comparable across machines.  Refresh the
    committed baseline with::

        PYTHONPATH=src python -m pytest \\
            benchmarks/bench_pipeline_throughput.py::bench_pipeline_throughput \\
            --bench-json benchmarks/BENCH_pipeline.json
    """
    rules = parse_rules(PIHOLE_FILTER_TEXT.splitlines())

    started = time.perf_counter()
    legacy_resolver = OrgResolver(world.entity_db, world.whois, memoize=False)
    legacy_filters = FilterList(rules, memoize=False)
    legacy_matrix = _legacy_analyze(
        dataset, legacy_resolver, legacy_filters, vendor_by_skill
    )
    legacy_seconds = time.perf_counter() - started

    state = {}

    def optimized():
        resolver = OrgResolver(world.entity_db, world.whois)
        filters = FilterList(rules)
        analysis = analyze_traffic(dataset, resolver, filters, vendor_by_skill)
        state["analysis"] = analysis
        state["cache_hits"] = resolver.cache_hits + filters.cache_hits
        return analysis

    optimized_times = []
    for _ in range(3):
        started = time.perf_counter()
        optimized()
        optimized_times.append(time.perf_counter() - started)
    optimized_seconds = min(optimized_times)
    benchmark.pedantic(optimized, rounds=1, iterations=1)

    speedup = legacy_seconds / optimized_seconds
    flow_count = sum(
        len(capture.flows())
        for artifacts in dataset.interest_personas
        for capture in artifacts.skill_captures.values()
    )
    measurements = {
        "legacy_seconds": round(legacy_seconds, 3),
        "optimized_seconds": round(optimized_seconds, 3),
        "speedup": round(speedup, 2),
        "flows": flow_count,
        "domain_cache_hits": state["cache_hits"],
    }
    bench_record("bench_pipeline_throughput", **measurements)
    benchmark.extra_info.update(measurements)

    assert state["analysis"].traffic_matrix == dict(legacy_matrix), (
        "optimized analysis diverged from the legacy pipeline"
    )
    assert state["cache_hits"] > 0, "memo caches never hit"
    assert speedup >= 1.5, (
        f"capture→analysis speedup {speedup:.2f}x < 1.5x (legacy "
        f"{legacy_seconds:.2f}s vs optimized {optimized_seconds:.2f}s)"
    )


def bench_obs_overhead(benchmark):
    """Full tracing (spans + counters + events) vs observability off.

    The observability layer's budget is <5% of campaign wall-clock; the
    bound asserted here is looser (15%) to absorb shared-runner timing
    noise — the ``obs_overhead`` ratio in ``extra_info`` is the number
    to watch for drift.
    """
    config = ExperimentConfig(
        skills_per_persona=8,
        pre_iterations=2,
        post_iterations=6,
        crawl_sites=8,
        prebid_discovery_target=50,
        audio_hours=2.0,
    )
    seed = Seed(106)
    rounds = 3

    def best_of(fn):
        times = []
        for _ in range(rounds):
            started = time.perf_counter()
            fn()
            times.append(time.perf_counter() - started)
        return min(times)

    run_campaign(config, seed, obs=False)  # warm imports and caches
    disabled = best_of(lambda: run_campaign(config, seed, obs=False))
    traced_dataset = benchmark.pedantic(
        lambda: run_campaign(config, seed), rounds=1, iterations=1
    )
    traced = best_of(lambda: run_campaign(config, seed))

    overhead = traced / disabled
    benchmark.extra_info["disabled_seconds"] = round(disabled, 3)
    benchmark.extra_info["traced_seconds"] = round(traced, 3)
    benchmark.extra_info["obs_overhead"] = round(overhead, 4)

    assert traced_dataset.obs is not None
    assert traced_dataset.obs.metrics.value("openwpm.bids_collected") > 0
    assert overhead <= 1.15, (
        f"observability overhead {100 * (overhead - 1):.1f}% exceeds the "
        f"budget (traced {traced:.2f}s vs disabled {disabled:.2f}s)"
    )
