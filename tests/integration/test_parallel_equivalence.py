"""Serial vs parallel campaign equivalence (the determinism contract).

The parallel runner's whole claim is that sharding the campaign by
persona changes *nothing observable*: for the same seed and config, the
exported dataset — every CSV and the JSON summary — is byte-identical
to the serial run's, for any worker count and either backend.
"""

import hashlib

import pytest

from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.export import EXPORT_FILES, export_dataset
from repro.core.personas import all_personas
from repro.core.world import build_world
from repro.util.rng import Seed

TINY = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)

SEED_ROOT = 2026


def _export_digests(dataset, out_dir):
    export_dataset(dataset, out_dir)
    return {
        name: hashlib.sha256((out_dir / name).read_bytes()).hexdigest()
        for name in EXPORT_FILES
    }


@pytest.fixture(scope="module")
def serial_digests(tmp_path_factory):
    dataset = run_campaign(TINY, Seed(SEED_ROOT))
    out = tmp_path_factory.mktemp("serial-export")
    return _export_digests(dataset, out)


class TestParallelEquivalence:
    @pytest.mark.parametrize(
        ("workers", "backend"),
        [
            (1, "thread"),
            (2, "thread"),
            (4, "thread"),
            (2, "process"),
            (4, "process"),
        ],
    )
    def test_export_bit_identical_to_serial(
        self, serial_digests, tmp_path, workers, backend
    ):
        dataset = run_campaign(
            TINY, Seed(SEED_ROOT), parallel=True, workers=workers, backend=backend
        )
        assert _export_digests(dataset, tmp_path) == serial_digests

    def test_different_seed_changes_exports(self, serial_digests, tmp_path):
        dataset = run_campaign(
            TINY, Seed(SEED_ROOT + 1), parallel=True, workers=2, backend="thread"
        )
        digests = _export_digests(dataset, tmp_path)
        assert digests != serial_digests

    def test_merged_dataset_shape(self):
        dataset = run_campaign(
            TINY, Seed(SEED_ROOT), parallel=True, workers=3, backend="thread"
        )
        assert list(dataset.personas) == [p.name for p in all_personas()]
        assert dataset.world is not None
        assert len(dataset.prebid_sites) == TINY.prebid_discovery_target
        # Worker wall-clock surfaces per shard, plus parent-side totals.
        assert any(key.startswith("shard0.") for key in dataset.timings)
        assert "total" in dataset.timings and "scatter" in dataset.timings


class TestRunnerSubsets:
    def test_serial_run_records_phase_timings(self):
        dataset = run_campaign(TINY, Seed(SEED_ROOT))
        for phase in ("setup", "discovery", "pre_crawls", "post_crawls", "total"):
            assert phase in dataset.timings
            assert dataset.timings[phase] >= 0.0

    def test_subset_runner_only_builds_its_personas(self):
        roster = all_personas()
        subset = roster[:2]
        world = build_world(Seed(SEED_ROOT))
        dataset = ExperimentRunner(world, TINY, personas=subset).run()
        assert list(dataset.personas) == [p.name for p in subset]

    def test_empty_subset_rejected(self):
        world = build_world(Seed(SEED_ROOT))
        with pytest.raises(ValueError, match="empty"):
            ExperimentRunner(world, TINY, personas=[])

    def test_duplicate_subset_rejected(self):
        roster = all_personas()
        world = build_world(Seed(SEED_ROOT))
        with pytest.raises(ValueError, match="duplicate"):
            ExperimentRunner(world, TINY, personas=[roster[0], roster[0]])
