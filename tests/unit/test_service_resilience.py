"""Unit tests for service backpressure and resilience: the bounded
admission queue, graceful drain, the per-job watchdog, cancel slot
accounting, ENOSPC job failure classification, and torn-tail recovery
of the job event log — all with stubbed campaign execution."""

import errno
import json
import threading
import time

import pytest

import repro.service.jobs as jobs_module
from repro.core.campaign import CampaignSpec
from repro.core.experiment import ExperimentConfig
from repro.service import (
    CampaignScheduler,
    DrainingError,
    Job,
    JobStore,
    QueueFullError,
)
from repro.service.jobs import JobEventWriter, read_event_lines

TINY = ExperimentConfig(
    skills_per_persona=2,
    pre_iterations=1,
    post_iterations=1,
    crawl_sites=2,
    prebid_discovery_target=5,
    audio_hours=0.5,
)

SPEC = CampaignSpec(config=TINY, seed=5)


class _StubExecute:
    """Replace Job.execute: hold a release gate, then succeed."""

    def __init__(self, seconds=0.05):
        self.seconds = seconds
        self.release = threading.Event()
        self.started = threading.Event()

    def __call__(self, job):
        self.started.set()
        job.update_state("running")
        if self.seconds is None:
            self.release.wait()
        else:
            time.sleep(self.seconds)
        job.events.emit("job.finished", state="complete")
        job.update_state("complete")
        return "complete"


class TestBoundedQueue:
    def test_overflow_is_rejected_with_retry_after(self, tmp_path, monkeypatch):
        stub = _StubExecute(seconds=None)
        monkeypatch.setattr(Job, "execute", lambda job: stub(job))
        scheduler = CampaignScheduler(
            JobStore(tmp_path), total_workers=1, max_queue=1
        )
        scheduler.start()
        try:
            scheduler.submit(SPEC.replace(seed=1))  # dispatched, running
            assert stub.started.wait(timeout=5)
            scheduler.submit(SPEC.replace(seed=2))  # fills the queue
            with pytest.raises(QueueFullError) as excinfo:
                scheduler.submit(SPEC.replace(seed=3))
            assert excinfo.value.retry_after >= 1
            assert "retry later" in str(excinfo.value)
            assert scheduler.counters()["service.jobs_rejected"] == 1
        finally:
            stub.release.set()
            assert scheduler.wait_idle(timeout=10)
            scheduler.shutdown()

    def test_reservation_rolls_back_when_persist_fails(
        self, tmp_path, monkeypatch
    ):
        store = JobStore(tmp_path)
        scheduler = CampaignScheduler(store, total_workers=1, max_queue=1)
        monkeypatch.setattr(
            store,
            "submit",
            lambda spec: (_ for _ in ()).throw(OSError(errno.ENOSPC, "full")),
        )
        with pytest.raises(OSError):
            scheduler.submit(SPEC)
        # The reserved slot came back: the queue is not poisoned.
        assert scheduler._reserved == 0
        monkeypatch.undo()
        stub = _StubExecute()
        monkeypatch.setattr(Job, "execute", lambda job: stub(job))
        scheduler.start()
        scheduler.submit(SPEC)
        assert scheduler.wait_idle(timeout=10)
        scheduler.shutdown()


class TestCancelReleasesSlot:
    def test_cancel_frees_queue_slot_and_emits_event_before_state(
        self, tmp_path, monkeypatch
    ):
        # 1-token budget + 1-slot queue: the cancelled job's admission
        # slot must come back, or the third submission could never be
        # accepted and the dequeued head would starve (the PR-8 token
        # leak, on the queue side).
        stub = _StubExecute(seconds=None)
        monkeypatch.setattr(Job, "execute", lambda job: stub(job))
        scheduler = CampaignScheduler(
            JobStore(tmp_path), total_workers=1, max_queue=1
        )
        scheduler.start()
        scheduler.submit(SPEC.replace(seed=1))
        assert stub.started.wait(timeout=5)
        victim = scheduler.submit(SPEC.replace(seed=2))
        with pytest.raises(QueueFullError):
            scheduler.submit(SPEC.replace(seed=3))

        assert scheduler.cancel(victim.id) == "cancelled"
        assert victim.state == "cancelled"
        # Terminal event landed in the log before the state flipped, so
        # an SSE tail closing on the state cannot miss it.
        records = [json.loads(l) for l in read_event_lines(victim.events_path)]
        assert any(r["type"] == "job.cancelled" for r in records)

        survivor = scheduler.submit(SPEC.replace(seed=3))  # slot released
        stub.release.set()
        assert scheduler.wait_idle(timeout=10)
        scheduler.shutdown()
        assert survivor.state == "complete"
        assert scheduler.counters()["service.jobs_cancelled"] == 1

    def test_cancel_requested_honoured_at_execute_entry(self, tmp_path):
        job = JobStore(tmp_path).submit(SPEC)
        job.set_flag("cancel_requested", True)
        assert job.execute() == "cancelled"
        assert job.state == "cancelled"
        records = [json.loads(l) for l in read_event_lines(job.events_path)]
        assert records[-1]["type"] == "job.cancelled"


class TestDrain:
    def test_drain_finishes_running_and_keeps_queued_durable(
        self, tmp_path, monkeypatch
    ):
        stub = _StubExecute(seconds=0.2)
        monkeypatch.setattr(Job, "execute", lambda job: stub(job))
        scheduler = CampaignScheduler(JobStore(tmp_path), total_workers=1)
        scheduler.start()
        running = scheduler.submit(SPEC.replace(seed=1))
        queued = scheduler.submit(SPEC.replace(seed=2))
        assert stub.started.wait(timeout=5)

        assert scheduler.drain(timeout=10) is True
        assert running.state == "complete"
        assert queued.state == "queued"  # durably queued, not lost
        with pytest.raises(DrainingError):
            scheduler.submit(SPEC.replace(seed=3))
        scheduler.shutdown()

        # A restarted scheduler re-admits the queued job.
        restarted = CampaignScheduler(JobStore(tmp_path), total_workers=1)
        restarted.start()
        assert restarted.wait_idle(timeout=10)
        restarted.shutdown()
        assert restarted.counters()["service.jobs_recovered"] == 1
        assert JobStore(tmp_path).get(queued.id).state == "complete"


class TestWatchdog:
    def test_hung_job_is_failed_and_tokens_freed(self, tmp_path, monkeypatch):
        hang = threading.Event()

        def execute(job):
            job.update_state("running")
            if job.spec.seed == 1:
                hang.wait(timeout=2.0)  # hung campaign
                return "complete"
            job.events.emit("job.finished", state="complete")
            job.update_state("complete")
            return "complete"

        monkeypatch.setattr(Job, "execute", execute)
        scheduler = CampaignScheduler(
            JobStore(tmp_path), total_workers=1, job_timeout=0.2
        )
        scheduler.start()
        hung = scheduler.submit(SPEC.replace(seed=1))
        survivor = scheduler.submit(SPEC.replace(seed=2))
        # With a 1-token budget the survivor can only run because the
        # watchdog freed the hung job's token.
        assert scheduler.wait_idle(timeout=10)
        assert survivor.state == "complete"
        assert hung.state == "failed"
        assert hung.describe()["reason"] == "watchdog_timeout"
        records = [json.loads(l) for l in read_event_lines(hung.events_path)]
        failures = [r for r in records if r["type"] == "job.failed"]
        assert failures and failures[0]["fields"]["reason"] == "watchdog_timeout"
        counters = scheduler.counters()
        assert counters["service.watchdog_reaped"] == 1
        assert counters["service.jobs_failed"] == 1

        # Let the zombie thread finish: its completion must neither
        # resurrect the job nor double-release tokens or counters.
        hang.set()
        time.sleep(0.3)
        assert hung.state == "failed"  # terminal-guarded update_state
        after = scheduler.counters()
        assert after["service.workers_active"] == 0
        assert after["service.jobs_completed"] == counters["service.jobs_completed"]
        scheduler.shutdown(wait=False)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="job_timeout"):
            CampaignScheduler(JobStore(tmp_path), job_timeout=0.0)
        with pytest.raises(ValueError, match="max_queue"):
            CampaignScheduler(JobStore(tmp_path), max_queue=0)


class TestEnospcJobFailure:
    def test_full_disk_parks_job_with_machine_readable_reason(
        self, tmp_path, monkeypatch
    ):
        def explode(spec, out_dir, **kwargs):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(jobs_module, "execute_spec", explode)
        job = JobStore(tmp_path).submit(SPEC)
        assert job.execute() == "failed"
        description = job.describe()
        assert description["reason"] == "storage_exhausted"
        records = [json.loads(l) for l in read_event_lines(job.events_path)]
        failed = [r for r in records if r["type"] == "job.failed"]
        assert failed and failed[0]["fields"]["reason"] == "storage_exhausted"


class TestEventWriterTornTail:
    def test_restart_truncates_fragment_and_continues_seq(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = JobEventWriter(path)
        writer.emit("job.submitted")
        writer.emit("job.started")
        with path.open("ab") as handle:
            handle.write(b'{"schema": 1, "seq": 2, "type": "job.pro')

        restarted = JobEventWriter(path)  # service restart
        # The torn fragment is physically gone, not just skipped.
        assert path.read_bytes().endswith(b"\n")
        assert b"job.pro" not in path.read_bytes()
        restarted.emit("job.finished")
        records = [json.loads(l) for l in read_event_lines(path)]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[-1]["type"] == "job.finished"
