"""Tests for the simulated clock and identifier factories."""

import datetime as dt

import pytest

from repro.util.clock import HOLIDAY_SEASON, PAPER_EPOCH, SimClock
from repro.util.ids import IdFactory, stable_hash


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10)
        clock.advance(2.5)
        assert clock.now == 12.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_datetime_tracks_epoch(self):
        clock = SimClock()
        clock.advance(3600)
        assert clock.datetime() == PAPER_EPOCH + dt.timedelta(hours=1)

    def test_default_epoch_in_holiday_season(self):
        assert SimClock().is_holiday_season()

    def test_leaves_holiday_season(self):
        clock = SimClock()
        end = HOLIDAY_SEASON[1]
        clock.advance((end - PAPER_EPOCH).total_seconds() + 1)
        assert not clock.is_holiday_season()

    def test_naive_epoch_rejected(self):
        with pytest.raises(ValueError):
            SimClock(epoch=dt.datetime(2021, 12, 10))


class TestIdFactory:
    def test_sequential_per_namespace(self):
        ids = IdFactory()
        assert ids.next("pkt") == "pkt-000000"
        assert ids.next("pkt") == "pkt-000001"
        assert ids.next("dev") == "dev-000000"

    def test_count(self):
        ids = IdFactory()
        ids.next("a")
        ids.next("a")
        assert ids.count("a") == 2
        assert ids.count("b") == 0


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_distinct_inputs(self):
        assert stable_hash("a") != stable_hash("b")

    def test_length_parameter(self):
        assert len(stable_hash("a", length=32)) == 32

    def test_length_bounds(self):
        with pytest.raises(ValueError):
            stable_hash("a", length=0)
        with pytest.raises(ValueError):
            stable_hash("a", length=65)
