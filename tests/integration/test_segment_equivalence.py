"""Segment-store exports must be byte-identical to the in-memory path.

The segment store is a storage backend, not an analysis change: for the
same seed and config, streaming the campaign through on-disk segments —
serially or sharded across workers, under a healthy network or fault
injection — must reproduce every export file bit-for-bit.  This suite
pins that, plus the store's reuse/resume semantics and a property test
that the k-way merge reproduces roster order for arbitrary shard splits.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import run_campaign, run_segment_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.export import (
    EXPORT_FILES,
    export_dataset,
    export_segment_store,
)
from repro.core.personas import scaled_roster
from repro.core.segments import SegmentError, SegmentStore
from repro.util.rng import Seed

SEED_ROOT = 42


def _config(fault_profile="none", **overrides):
    return ExperimentConfig(
        skills_per_persona=2,
        pre_iterations=1,
        post_iterations=1,
        crawl_sites=2,
        prebid_discovery_target=5,
        audio_hours=0.5,
        fault_profile=fault_profile,
        **overrides,
    )


def _digests(out_dir):
    return {
        name: hashlib.sha256((out_dir / name).read_bytes()).hexdigest()
        for name in EXPORT_FILES
    }


@pytest.fixture(scope="module", params=["none", "mild"])
def memory_reference(request, tmp_path_factory):
    """In-memory serial exports per fault profile — the byte oracle."""
    fault_profile = request.param
    out = tmp_path_factory.mktemp(f"memref-{fault_profile}")
    dataset = run_campaign(_config(fault_profile), Seed(SEED_ROOT), obs=False)
    export_dataset(dataset, out)
    return fault_profile, _digests(out)


class TestByteEquivalence:
    def test_serial_segment_campaign(self, memory_reference, tmp_path):
        fault_profile, reference = memory_reference
        store = run_segment_campaign(
            _config(fault_profile), Seed(SEED_ROOT), store_dir=tmp_path / "s"
        )
        export_segment_store(store, tmp_path / "out")
        assert _digests(tmp_path / "out") == reference

    def test_parallel_thread_segment_campaign(self, memory_reference, tmp_path):
        fault_profile, reference = memory_reference
        store = run_segment_campaign(
            _config(fault_profile),
            Seed(SEED_ROOT),
            store_dir=tmp_path / "s",
            parallel=True,
            workers=4,
            backend="thread",
        )
        export_segment_store(store, tmp_path / "out")
        assert _digests(tmp_path / "out") == reference

    def test_parallel_process_segment_campaign(self, memory_reference, tmp_path):
        fault_profile, reference = memory_reference
        store = run_segment_campaign(
            _config(fault_profile),
            Seed(SEED_ROOT),
            store_dir=tmp_path / "s",
            parallel=True,
            workers=2,
            backend="process",
            batch_personas=3,
        )
        export_segment_store(store, tmp_path / "out")
        assert _digests(tmp_path / "out") == reference


class TestReuseAndResume:
    def test_rerun_reuses_covered_personas(self, tmp_path):
        config = _config()
        store = run_segment_campaign(
            config, Seed(SEED_ROOT), store_dir=tmp_path / "s"
        )
        markers = sorted(p.name for p in store.batches_dir.glob("batch-*.json"))
        mtimes = {p.name: p.stat().st_mtime_ns for p in store.batches_dir.iterdir()}
        again = run_segment_campaign(
            config, Seed(SEED_ROOT), store_dir=tmp_path / "s"
        )
        assert sorted(
            p.name for p in again.batches_dir.glob("batch-*.json")
        ) == markers
        # Content-addressed reuse: nothing was rewritten.
        assert {
            p.name: p.stat().st_mtime_ns for p in again.batches_dir.iterdir()
        } == mtimes

    def test_partial_store_resumes_to_identical_bytes(self, tmp_path):
        config = _config()
        interrupted = SegmentStore(
            tmp_path / "s",
            SEED_ROOT,
            _fingerprint(config),
            tuple(p.name for p in scaled_roster(1)),
        )
        # Simulate a kill: cover only a prefix of the roster.
        from repro.core.segments import write_segment_batch

        interrupted.ensure_manifest()
        write_segment_batch(interrupted, Seed(SEED_ROOT), config, [0, 1, 2])
        with pytest.raises(SegmentError):
            export_segment_store(interrupted, tmp_path / "early")

        resumed = run_segment_campaign(
            config, Seed(SEED_ROOT), store_dir=tmp_path / "s"
        )
        export_segment_store(resumed, tmp_path / "resumed")
        fresh = run_segment_campaign(
            config, Seed(SEED_ROOT), store_dir=tmp_path / "fresh"
        )
        export_segment_store(fresh, tmp_path / "fresh-out")
        assert _digests(tmp_path / "resumed") == _digests(tmp_path / "fresh-out")


class TestRosterScale:
    def test_scaled_campaign_exports(self, tmp_path):
        config = _config(roster_scale=2)
        store = run_segment_campaign(
            config, Seed(SEED_ROOT), store_dir=tmp_path / "s", batch_personas=4
        )
        assert len(store.roster) == 9 * 2 + 4
        counts = export_segment_store(store, tmp_path / "out")
        assert counts["bids.csv"] > 0
        import json

        summary = json.loads(
            (tmp_path / "out" / "summary.json").read_text(encoding="utf-8")
        )
        assert len(summary["personas"]) == 22
        assert "fashion-and-style-r2" in summary["personas"]
        # Replicated interest personas get their own significance cells.
        assert "fashion-and-style-r2" in summary["significance_vs_vanilla"]


def _fingerprint(config):
    from repro.core.cache import config_fingerprint

    return config_fingerprint(config)


class TestMergeProperty:
    """The k-way merge reproduces roster order for ANY shard split."""

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        data=st.data(),
    )
    def test_arbitrary_splits_merge_to_roster_order(self, n, data):
        import tempfile

        labels = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=4), min_size=n, max_size=n
            )
        )
        counts = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=3), min_size=n, max_size=n
            )
        )
        batches = {}
        for pos, label in enumerate(labels):
            batches.setdefault(label, []).append(pos)
        order = data.draw(st.permutations(sorted(batches)))

        with tempfile.TemporaryDirectory() as root:
            store = SegmentStore(
                root, 1, "prop000000000000", tuple(f"p{i}" for i in range(n))
            )
            for label in order:
                positions = batches[label]
                store.write_batch(
                    positions,
                    {
                        "bids": [
                            {"pos": pos, "seq": k}
                            for pos in positions
                            for k in range(counts[pos])
                        ]
                    },
                )
            merged = [(r["pos"], r["seq"]) for r in store.iter_stream("bids")]
            expected = [
                (pos, k) for pos in range(n) for k in range(counts[pos])
            ]
            assert merged == expected
