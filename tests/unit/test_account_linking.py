"""Tests for the account-linking flow (§3.1.1's iRobot example)."""

import pytest

from repro.alexa import AlexaCloud, AmazonAccount, EchoDevice, Marketplace
from repro.data.domains import build_endpoint_registry
from repro.data.skill_catalog import build_catalog
from repro.netsim.router import Router
from repro.util.clock import SimClock
from repro.util.rng import Seed


@pytest.fixture
def rig():
    seed = Seed(29)
    clock = SimClock()
    router = Router(build_endpoint_registry(), clock)
    catalog = build_catalog(seed)
    cloud = AlexaCloud(catalog, router, clock, seed)
    marketplace = Marketplace(catalog, cloud)
    account = AmazonAccount(email="link@example.com", persona="link")
    device = EchoDevice("echo-link", account, router, cloud, seed)
    return catalog, cloud, marketplace, account, device


class TestAccountLinking:
    def test_irobot_requires_linking(self, rig):
        catalog, *_ = rig
        assert catalog.by_name("iRobot Home").requires_account_linking

    def test_install_without_linking_succeeds(self, rig):
        catalog, cloud, marketplace, account, _ = rig
        spec = catalog.by_name("iRobot Home")
        receipt = marketplace.install(account, spec.skill_id)
        assert receipt.installed
        assert not receipt.account_linked

    def test_unlinked_skill_asks_for_linking(self, rig):
        catalog, cloud, marketplace, account, device = rig
        spec = catalog.by_name("iRobot Home")
        marketplace.install(account, spec.skill_id)
        replies = [device.say(f"alexa, {u}") for u in spec.sample_utterances]
        answered = [r for r in replies if r]
        assert answered
        assert any("link your account" in r for r in answered)

    def test_linked_skill_works_normally(self, rig):
        catalog, cloud, marketplace, account, device = rig
        spec = catalog.by_name("iRobot Home")
        receipt = marketplace.install(account, spec.skill_id, link_account=True)
        assert receipt.account_linked
        replies = [device.say(f"alexa, {u}") for u in spec.sample_utterances]
        assert any(r and "link your account" not in r for r in replies if r)

    def test_unlinked_skill_still_collects_data(self, rig):
        """Amazon-mediated collection happens even without linking —
        part of why Amazon has the best vantage point (§4.1)."""
        catalog, cloud, marketplace, account, device = rig
        spec = catalog.by_name("iRobot Home")
        if not spec.data_types:
            pytest.skip("seeded catalog assigned no data types to iRobot")
        marketplace.install(account, spec.skill_id)
        capture_host = "api.amazonalexa.com"
        capture = cloud.router.start_capture("irobot", device_filter="echo-link")
        for utterance in spec.sample_utterances:
            device.say(f"alexa, {utterance}")
        cloud.router.stop_capture(capture)
        uploads = [p for p in capture if p.sni == capture_host]
        assert uploads

    def test_normal_skill_receipt_not_linked_flagged(self, rig):
        catalog, cloud, marketplace, account, _ = rig
        sonos = catalog.by_name("Sonos")
        receipt = marketplace.install(account, sonos.skill_id)
        assert receipt.installed
        assert not receipt.account_linked  # no external account involved
