"""Shared fixtures: seeded worlds and cached experiment datasets.

The ``small_dataset`` fixture runs a scaled-down but complete campaign
once per session; unit tests that only need isolated components build
their own fixtures locally.
"""

import pytest

from repro.core.campaign import run_campaign
from repro.core.experiment import ExperimentConfig
from repro.core.world import build_world
from repro.util.rng import Seed

SMALL_CONFIG = ExperimentConfig(
    skills_per_persona=6,
    pre_iterations=2,
    post_iterations=4,
    crawl_sites=6,
    prebid_discovery_target=40,
    audio_hours=2.0,
)


@pytest.fixture(scope="session")
def seed():
    return Seed(42)


@pytest.fixture(scope="session")
def world(seed):
    """A fresh fully-built world (no experiment run on it)."""
    return build_world(seed)


@pytest.fixture(scope="session")
def small_dataset():
    """A complete but scaled-down audit campaign."""
    return run_campaign(SMALL_CONFIG, Seed(7))
